"""Structured training history shared by all trainers.

Records per-iteration losses, periodic evaluation scores, communication
statistics and notable events (swaps, federated rounds, crashes).  The
experiment harness consumes histories to produce the series plotted in
Figures 3-6 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..metrics.evaluator import EvaluationResult

__all__ = ["TrainingHistory"]


@dataclass
class TrainingHistory:
    """Time series collected during one training run."""

    algorithm: str
    config: Dict[str, object] = field(default_factory=dict)
    iterations: List[int] = field(default_factory=list)
    generator_loss: List[float] = field(default_factory=list)
    discriminator_loss: List[float] = field(default_factory=list)
    evaluations: List[EvaluationResult] = field(default_factory=list)
    events: List[Dict[str, object]] = field(default_factory=list)
    traffic: Dict[str, float] = field(default_factory=dict)
    compute: Dict[str, float] = field(default_factory=dict)
    #: Per-iteration batch staleness under the pipelined execution mode
    #: (``TrainingConfig.pipeline_depth > 0``): how many generator updates the
    #: iteration's generated batches were missing relative to the synchronous
    #: schedule.  Parallel to :attr:`iterations` when pipelining is active;
    #: empty for synchronous runs.
    staleness: List[int] = field(default_factory=list)
    #: Per-worker staleness observations under asynchronous aggregation
    #: (``TrainingConfig.aggregation="async"``): for each worker index, the
    #: age in global updates of every contribution of theirs that was folded
    #: into the model.  The bounded-staleness contract —
    #: ``max(per-worker staleness) <= config.max_staleness`` — is checked
    #: against exactly this record.  Empty for synchronous runs.
    worker_staleness: Dict[int, List[int]] = field(default_factory=dict)
    #: Summary of the pipelined run's achieved overlap (depth, lookahead /
    #: fan-out generation counts, staleness aggregates, max in-flight window);
    #: empty for synchronous runs.  See
    #: :meth:`repro.runtime.pipeline.PipelineStats.as_overlap_dict`.
    overlap: Dict[str, float] = field(default_factory=dict)
    #: Membership-event counters from an elastic resident pool (slot losses,
    #: joins, reassignments, reconnect attempts; see
    #: :meth:`repro.runtime.resident.ResidentBackend.membership_counters`).
    #: Empty under the default fail-stop discipline.  The individual events
    #: (``membership_*`` / ``slot_loss`` kinds) land in :attr:`events`.
    membership: Dict[str, int] = field(default_factory=dict)

    # -- recording -------------------------------------------------------------
    def record_losses(self, iteration: int, gen_loss: float, disc_loss: float) -> None:
        """Append per-iteration generator / discriminator losses."""
        self.iterations.append(int(iteration))
        self.generator_loss.append(float(gen_loss))
        self.discriminator_loss.append(float(disc_loss))

    def record_staleness(self, iteration: int, staleness: int) -> None:
        """Append one pipelined iteration's batch staleness.

        Only called by the pipelined training loops, right after the matching
        :meth:`record_losses`, so ``staleness[i]`` describes ``iterations[i]``.
        """
        if len(self.staleness) >= len(self.iterations):
            raise ValueError(
                "record_staleness must follow record_losses for the same "
                f"iteration (iteration {iteration})"
            )
        self.staleness.append(int(staleness))

    def record_worker_staleness(self, worker_index: int, staleness: int) -> None:
        """Append one applied contribution's staleness for ``worker_index``."""
        self.worker_staleness.setdefault(int(worker_index), []).append(int(staleness))

    def record_evaluation(self, result: EvaluationResult) -> None:
        """Append a periodic evaluation result."""
        self.evaluations.append(result)

    def record_event(self, iteration: int, kind: str, **details: object) -> None:
        """Append a structured event (swap, round, crash, ...)."""
        self.events.append({"iteration": int(iteration), "kind": kind, **details})

    # -- queries ---------------------------------------------------------------
    @property
    def score_series(self) -> Dict[str, List[float]]:
        """Evaluation series keyed by metric name."""
        return {
            "iteration": [e.iteration for e in self.evaluations],
            "score": [e.score for e in self.evaluations],
            "fid": [e.fid for e in self.evaluations],
            "modes_covered": [e.modes_covered for e in self.evaluations],
        }

    @property
    def final_evaluation(self) -> Optional[EvaluationResult]:
        """Last recorded evaluation, or ``None`` if evaluation was disabled."""
        return self.evaluations[-1] if self.evaluations else None

    def best_score(self) -> float:
        """Best (highest) dataset score observed."""
        if not self.evaluations:
            return float("nan")
        return max(e.score for e in self.evaluations)

    def best_fid(self) -> float:
        """Best (lowest) FID observed."""
        if not self.evaluations:
            return float("nan")
        return min(e.fid for e in self.evaluations)

    def mean_generator_loss(self, last: int = 0) -> float:
        """Mean generator loss over the whole run or the last ``last`` iterations."""
        losses = self.generator_loss[-last:] if last else self.generator_loss
        return float(np.mean(losses)) if losses else float("nan")

    def events_of_kind(self, kind: str) -> List[Dict[str, object]]:
        """All recorded events of the given kind."""
        return [e for e in self.events if e["kind"] == kind]

    def mean_staleness(self) -> float:
        """Mean recorded batch staleness (0.0 for synchronous runs)."""
        return float(np.mean(self.staleness)) if self.staleness else 0.0

    def max_worker_staleness(self) -> int:
        """Largest applied-contribution staleness across all workers (0 if none).

        Under ``aggregation="async"`` this is the quantity the
        bounded-staleness contract caps at ``config.max_staleness``.
        """
        values = [s for series in self.worker_staleness.values() for s in series]
        return max(values) if values else 0

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict export (JSON-serialisable) used by the report writers."""
        return {
            "algorithm": self.algorithm,
            "config": dict(self.config),
            "iterations": list(self.iterations),
            "generator_loss": list(self.generator_loss),
            "discriminator_loss": list(self.discriminator_loss),
            "evaluations": [e.as_dict() for e in self.evaluations],
            "events": list(self.events),
            "traffic": dict(self.traffic),
            "compute": dict(self.compute),
            "staleness": list(self.staleness),
            "worker_staleness": {
                str(worker): list(series)
                for worker, series in self.worker_staleness.items()
            },
            "overlap": dict(self.overlap),
            "membership": dict(self.membership),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "TrainingHistory":
        """Rebuild a history from an :meth:`as_dict` export (JSON round-trip).

        Unknown keys are ignored and missing keys default, so histories
        serialised by older versions (without the pipeline fields) load
        cleanly.
        """
        return cls(
            algorithm=str(payload["algorithm"]),
            config=dict(payload.get("config", {})),
            iterations=[int(i) for i in payload.get("iterations", [])],
            generator_loss=[float(v) for v in payload.get("generator_loss", [])],
            discriminator_loss=[float(v) for v in payload.get("discriminator_loss", [])],
            evaluations=[
                EvaluationResult(**e) for e in payload.get("evaluations", [])
            ],
            events=[dict(e) for e in payload.get("events", [])],
            traffic=dict(payload.get("traffic", {})),
            compute=dict(payload.get("compute", {})),
            staleness=[int(s) for s in payload.get("staleness", [])],
            worker_staleness={
                int(worker): [int(s) for s in series]
                for worker, series in payload.get("worker_staleness", {}).items()
            },
            overlap=dict(payload.get("overlap", {})),
            membership={
                str(kind): int(count)
                for kind, count in payload.get("membership", {}).items()
            },
        )

"""Extensions of MD-GAN discussed in the paper's perspectives (Section VII).

Two extensions are provided as thin variants of :class:`MDGANTrainer`:

* :class:`AsyncMDGANTrainer` — the "asynchronous setting" of Section VII-1.
  Instead of averaging all worker feedbacks and applying one generator
  update per global iteration, the server applies an update for each
  feedback as it is processed.  The update *schedule* — and therefore the
  staleness of the parameters each worker's feedback was computed on —
  matches the asynchronous variant while the merge order stays
  deterministic, so the variant composes with every execution backend of
  :mod:`repro.runtime` (``TrainingConfig(backend="thread"|"process")``),
  which both subclasses inherit from :class:`MDGANTrainer` unchanged.
* :class:`SampledMDGANTrainer` — the "scaling the number of workers"
  discussion of Section VII-4.  Only a random fraction of workers
  participates in each global iteration, the way federated learning samples
  a subset of devices per round; discriminator swapping still circulates
  models across the full population so the whole distributed dataset is
  eventually leveraged.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..datasets.base import ImageDataset
from ..metrics.evaluator import GeneratorEvaluator
from ..models.base import GANFactory
from ..simulation.failures import CrashSchedule
from ..simulation.network import LinkModel
from .config import TrainingConfig
from .mdgan import MDGANTrainer

__all__ = ["AsyncMDGANTrainer", "SampledMDGANTrainer"]


class AsyncMDGANTrainer(MDGANTrainer):
    """MD-GAN with per-feedback generator updates (Section VII-1)."""

    def __init__(
        self,
        factory: GANFactory,
        shards: Sequence[ImageDataset],
        config: TrainingConfig,
        evaluator: Optional[GeneratorEvaluator] = None,
        link_model: Optional[LinkModel] = None,
        crash_schedule: Optional[CrashSchedule] = None,
        swap_enabled: bool = True,
    ) -> None:
        super().__init__(
            factory,
            shards,
            config,
            evaluator=evaluator,
            link_model=link_model,
            crash_schedule=crash_schedule,
            swap_enabled=swap_enabled,
            per_feedback_updates=True,
        )
        self.history.algorithm = "md-gan-async"


class SampledMDGANTrainer(MDGANTrainer):
    """MD-GAN with partial worker participation per iteration (Section VII-4)."""

    def __init__(
        self,
        factory: GANFactory,
        shards: Sequence[ImageDataset],
        config: TrainingConfig,
        participation_fraction: float = 0.5,
        evaluator: Optional[GeneratorEvaluator] = None,
        link_model: Optional[LinkModel] = None,
        crash_schedule: Optional[CrashSchedule] = None,
        swap_enabled: bool = True,
    ) -> None:
        config = config.with_overrides(participation_fraction=participation_fraction)
        super().__init__(
            factory,
            shards,
            config,
            evaluator=evaluator,
            link_model=link_model,
            crash_schedule=crash_schedule,
            swap_enabled=swap_enabled,
        )
        self.history.algorithm = "md-gan-sampled"

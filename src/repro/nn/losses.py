"""Loss functions for GAN training.

Each functional loss returns ``(value, grad_wrt_logits_or_probs)`` so the
trainers can seed the backward pass directly.  Gradients are averaged over the
batch, matching the ``1/b`` factors in the paper's :math:`\\tilde A` and
:math:`\\tilde B` terms.

Two GAN objectives are provided:

* :class:`GANLoss` — the original (saturating) objective from Goodfellow et
  al., which is the one written out in the MD-GAN paper, plus the widely-used
  non-saturating generator variant.
* :class:`ACGANLoss` — the auxiliary-classifier GAN objective used for the
  paper's experiments (ACGAN, Odena et al.), which adds a class-prediction
  head to the discriminator.

Precision policy: the loss *internals* always run in float64 — the arrays are
tiny (one logit row per sample) and the log/exp arithmetic benefits from the
headroom — but returned gradients are cast back to the dtype of the incoming
logits, so a float32 model receives float32 seeds for its backward pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = [
    "sigmoid",
    "bce_with_logits",
    "softmax_cross_entropy",
    "mse_loss",
    "GANLoss",
    "ACGANLoss",
]

_EPS = 1e-12


def _grad_like(grad: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Cast a float64-computed gradient back to the caller's dtype."""
    dtype = np.asarray(reference).dtype
    if not np.issubdtype(dtype, np.floating):
        return grad
    return grad.astype(dtype, copy=False)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def bce_with_logits(
    logits: np.ndarray, targets: np.ndarray
) -> Tuple[float, np.ndarray]:
    """Binary cross-entropy evaluated on raw logits.

    Returns the mean loss and its gradient with respect to the logits
    (already divided by the number of elements).
    """
    logits_in = logits
    logits = np.asarray(logits, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if logits.shape != targets.shape:
        raise ValueError(
            f"Shape mismatch: logits {logits.shape} vs targets {targets.shape}"
        )
    # log(1 + exp(-|x|)) formulation avoids overflow.
    loss = np.maximum(logits, 0.0) - logits * targets + np.log1p(np.exp(-np.abs(logits)))
    probs = sigmoid(logits)
    grad = (probs - targets) / logits.size
    return float(loss.mean()), _grad_like(grad, logits_in)


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> Tuple[float, np.ndarray]:
    """Softmax cross-entropy with integer class labels.

    ``logits`` has shape ``(N, K)`` and ``labels`` shape ``(N,)``.  Returns
    the mean loss and gradient w.r.t. the logits.
    """
    logits_in = logits
    logits = np.asarray(logits, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    n = logits.shape[0]
    shifted = logits - logits.max(axis=1, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    log_probs = shifted - log_z
    loss = -log_probs[np.arange(n), labels].mean()
    grad = np.exp(log_probs)
    grad[np.arange(n), labels] -= 1.0
    grad /= n
    return float(loss), _grad_like(grad, logits_in)


def mse_loss(pred: np.ndarray, target: np.ndarray) -> Tuple[float, np.ndarray]:
    """Mean squared error and its gradient w.r.t. the prediction."""
    pred_in = pred
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    diff = pred - target
    return float(np.mean(diff**2)), _grad_like(2.0 * diff / diff.size, pred_in)


@dataclass
class GANLoss:
    """Standard (vanilla) GAN objective on discriminator logits.

    The discriminator outputs one raw logit per sample (no sigmoid layer —
    the loss applies it internally for numerical stability).

    Parameters
    ----------
    non_saturating:
        If ``True`` the generator maximises ``log D(G(z))`` instead of
        minimising ``log(1 - D(G(z)))``.  The paper's formulation is the
        saturating one; the non-saturating variant is the practical default
        in most implementations and is exposed for the ablations.
    label_smoothing:
        Real-label smoothing value (e.g. ``0.9``) applied to the
        discriminator's real targets; ``1.0`` disables smoothing.
    """

    non_saturating: bool = True
    label_smoothing: float = 1.0

    def discriminator_loss(
        self, real_logits: np.ndarray, fake_logits: np.ndarray
    ) -> Tuple[float, np.ndarray, np.ndarray]:
        """Return ``(loss, grad_real_logits, grad_fake_logits)``."""
        real_targets = np.full_like(real_logits, self.label_smoothing, dtype=np.float64)
        fake_targets = np.zeros_like(fake_logits, dtype=np.float64)
        loss_r, grad_r = bce_with_logits(real_logits, real_targets)
        loss_f, grad_f = bce_with_logits(fake_logits, fake_targets)
        return loss_r + loss_f, grad_r, grad_f

    def generator_loss(self, fake_logits: np.ndarray) -> Tuple[float, np.ndarray]:
        """Return ``(loss, grad_fake_logits)`` for the generator objective."""
        if self.non_saturating:
            targets = np.ones_like(fake_logits, dtype=np.float64)
            return bce_with_logits(fake_logits, targets)
        # Saturating form: minimise log(1 - D(G(z))) = maximise BCE with
        # target 0, so the gradient flips sign.
        targets = np.zeros_like(fake_logits, dtype=np.float64)
        loss, grad = bce_with_logits(fake_logits, targets)
        return -loss, -grad


@dataclass
class ACGANLoss:
    """Auxiliary-classifier GAN objective (Odena et al., 2017).

    The discriminator outputs ``1 + num_classes`` raw values per sample: the
    first column is the real/fake logit, the remaining columns are class
    logits.  Both discriminator and generator add the classification loss on
    their respective batches, weighted by ``aux_weight``.
    """

    num_classes: int
    non_saturating: bool = True
    label_smoothing: float = 1.0
    aux_weight: float = 1.0

    def split(self, outputs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Split raw discriminator outputs into (adversarial logit, class logits)."""
        if outputs.ndim != 2 or outputs.shape[1] != 1 + self.num_classes:
            raise ValueError(
                f"ACGAN discriminator must output {1 + self.num_classes} values "
                f"per sample, got shape {outputs.shape}"
            )
        return outputs[:, :1], outputs[:, 1:]

    def discriminator_loss(
        self,
        real_outputs: np.ndarray,
        real_labels: np.ndarray,
        fake_outputs: np.ndarray,
        fake_labels: np.ndarray,
    ) -> Tuple[float, np.ndarray, np.ndarray]:
        """Return ``(loss, grad_real_outputs, grad_fake_outputs)``."""
        adv = GANLoss(self.non_saturating, self.label_smoothing)
        real_adv, real_cls = self.split(real_outputs)
        fake_adv, fake_cls = self.split(fake_outputs)
        loss_adv, g_real_adv, g_fake_adv = adv.discriminator_loss(real_adv, fake_adv)
        loss_rc, g_real_cls = softmax_cross_entropy(real_cls, real_labels)
        loss_fc, g_fake_cls = softmax_cross_entropy(fake_cls, fake_labels)
        grad_real = np.concatenate([g_real_adv, self.aux_weight * g_real_cls], axis=1)
        grad_fake = np.concatenate([g_fake_adv, self.aux_weight * g_fake_cls], axis=1)
        total = loss_adv + self.aux_weight * (loss_rc + loss_fc)
        return float(total), grad_real, grad_fake

    def generator_loss(
        self, fake_outputs: np.ndarray, fake_labels: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """Return ``(loss, grad_fake_outputs)`` for the generator objective."""
        adv = GANLoss(self.non_saturating, self.label_smoothing)
        fake_adv, fake_cls = self.split(fake_outputs)
        loss_adv, g_adv = adv.generator_loss(fake_adv)
        loss_cls, g_cls = softmax_cross_entropy(fake_cls, fake_labels)
        grad = np.concatenate([g_adv, self.aux_weight * g_cls], axis=1)
        return float(loss_adv + self.aux_weight * loss_cls), grad

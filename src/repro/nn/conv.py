"""Convolutional layers built on the im2col primitives in ``tensor_ops``.

All layers use the NCHW layout.  ``Conv2DTranspose`` is implemented through
the convolution/transposed-convolution duality: its forward pass is the
input-gradient of a convolution and vice versa, so both layers share the same
three vectorised primitives.

Weights are created in the layer's policy dtype (float32 by default) and the
shared primitives are dtype-preserving, so the convolution hot path performs
no per-step casts.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from . import initializers as init
from .layers import Layer
from .tensor_ops import (
    conv2d_forward,
    conv2d_input_grad,
    conv2d_weight_grad,
    conv_output_size,
    conv_transpose_output_size,
)

__all__ = ["Conv2D", "Conv2DTranspose", "MaxPool2D", "AvgPool2D", "same_padding"]


def same_padding(kernel_size: int) -> int:
    """Symmetric padding that preserves spatial size for stride-1, odd kernels."""
    if kernel_size % 2 == 0:
        raise ValueError(
            f"'same' padding requires an odd kernel size, got {kernel_size}"
        )
    return kernel_size // 2


class Conv2D(Layer):
    """2-D convolution (cross-correlation) layer.

    Weight shape is ``(filters, in_channels, kh, kw)``.
    """

    def __init__(
        self,
        filters: int,
        kernel_size: int,
        stride: int = 1,
        padding: int | str = 0,
        use_bias: bool = True,
        kernel_initializer=init.glorot_uniform,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        if filters <= 0 or kernel_size <= 0 or stride <= 0:
            raise ValueError("filters, kernel_size and stride must be positive")
        self.filters = int(filters)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        if padding == "same":
            padding = same_padding(self.kernel_size)
        self.padding = int(padding)
        self.use_bias = bool(use_bias)
        self.kernel_initializer = kernel_initializer
        self._x: Optional[np.ndarray] = None

    def compute_output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        _, h, w = input_shape
        out_h = conv_output_size(h, self.kernel_size, self.stride, self.padding)
        out_w = conv_output_size(w, self.kernel_size, self.stride, self.padding)
        return (self.filters, out_h, out_w)

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        c_in = int(input_shape[0])
        self.add_param(
            "W",
            (self.filters, c_in, self.kernel_size, self.kernel_size),
            rng,
            self.kernel_initializer,
        )
        if self.use_bias:
            self.add_param("b", (self.filters,), rng, init.zeros)
        super().build(input_shape, rng)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        del training
        self._x = x
        out = conv2d_forward(x, self.params["W"], self.stride, self.padding)
        if self.use_bias:
            out = out + self.params["b"].reshape(1, -1, 1, 1)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.grads["W"] += conv2d_weight_grad(
            self._x,
            grad_out,
            (self.kernel_size, self.kernel_size),
            self.stride,
            self.padding,
        )
        if self.use_bias:
            self.grads["b"] += grad_out.sum(axis=(0, 2, 3))
        return conv2d_input_grad(
            grad_out,
            self.params["W"],
            self._x.shape[2:],
            self.stride,
            self.padding,
        )


class Conv2DTranspose(Layer):
    """2-D transposed convolution (fractionally strided convolution).

    Weight shape is ``(in_channels, filters, kh, kw)`` — the layout of the
    *virtual* convolution whose input-gradient this layer computes.
    """

    def __init__(
        self,
        filters: int,
        kernel_size: int,
        stride: int = 1,
        padding: int | str = 0,
        output_padding: int = 0,
        use_bias: bool = True,
        kernel_initializer=init.glorot_uniform,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        if filters <= 0 or kernel_size <= 0 or stride <= 0:
            raise ValueError("filters, kernel_size and stride must be positive")
        self.filters = int(filters)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        if padding == "same":
            padding = same_padding(self.kernel_size)
        self.padding = int(padding)
        self.output_padding = int(output_padding)
        if self.output_padding >= self.stride:
            raise ValueError("output_padding must be smaller than stride")
        self.use_bias = bool(use_bias)
        self.kernel_initializer = kernel_initializer
        self._x: Optional[np.ndarray] = None

    def compute_output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        _, h, w = input_shape
        out_h = conv_transpose_output_size(
            h, self.kernel_size, self.stride, self.padding, self.output_padding
        )
        out_w = conv_transpose_output_size(
            w, self.kernel_size, self.stride, self.padding, self.output_padding
        )
        return (self.filters, out_h, out_w)

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        c_in = int(input_shape[0])
        # Virtual convolution maps (filters -> c_in); its weight layout is
        # (c_out=c_in, c_in=filters, kh, kw).
        self.add_param(
            "W",
            (c_in, self.filters, self.kernel_size, self.kernel_size),
            rng,
            self.kernel_initializer,
        )
        if self.use_bias:
            self.add_param("b", (self.filters,), rng, init.zeros)
        super().build(input_shape, rng)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        del training
        self._x = x
        out_shape = self.compute_output_shape(x.shape[1:])
        out = conv2d_input_grad(
            x,
            self.params["W"],
            out_shape[1:],
            self.stride,
            self.padding,
        )
        if self.use_bias:
            out = out + self.params["b"].reshape(1, -1, 1, 1)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        # Duality: weight gradient of the transpose is the weight gradient of
        # the virtual convolution with (input=grad_out, output-grad=x).
        self.grads["W"] += conv2d_weight_grad(
            grad_out,
            self._x,
            (self.kernel_size, self.kernel_size),
            self.stride,
            self.padding,
        )
        if self.use_bias:
            self.grads["b"] += grad_out.sum(axis=(0, 2, 3))
        return conv2d_forward(grad_out, self.params["W"], self.stride, self.padding)


class MaxPool2D(Layer):
    """Max pooling with a square window and matching stride."""

    def __init__(self, pool_size: int = 2, name: Optional[str] = None) -> None:
        super().__init__(name)
        if pool_size <= 0:
            raise ValueError(f"pool_size must be positive, got {pool_size}")
        self.pool_size = int(pool_size)

    def compute_output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        c, h, w = input_shape
        if h % self.pool_size or w % self.pool_size:
            raise ValueError(
                f"Spatial dims {(h, w)} must be divisible by pool size "
                f"{self.pool_size}"
            )
        return (c, h // self.pool_size, w // self.pool_size)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        del training
        n, c, h, w = x.shape
        p = self.pool_size
        windows = x.reshape(n, c, h // p, p, w // p, p)
        out = windows.max(axis=(3, 5))
        self._mask = windows == out[:, :, :, None, :, None]
        self._in_shape = x.shape
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = self._mask * grad_out[:, :, :, None, :, None]
        # If several entries tie for the max, split the gradient evenly.
        counts = self._mask.sum(axis=(3, 5), keepdims=True)
        grad = grad / counts
        return grad.reshape(self._in_shape)


class AvgPool2D(Layer):
    """Average pooling with a square window and matching stride."""

    def __init__(self, pool_size: int = 2, name: Optional[str] = None) -> None:
        super().__init__(name)
        if pool_size <= 0:
            raise ValueError(f"pool_size must be positive, got {pool_size}")
        self.pool_size = int(pool_size)

    def compute_output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        c, h, w = input_shape
        if h % self.pool_size or w % self.pool_size:
            raise ValueError(
                f"Spatial dims {(h, w)} must be divisible by pool size "
                f"{self.pool_size}"
            )
        return (c, h // self.pool_size, w // self.pool_size)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        del training
        n, c, h, w = x.shape
        p = self.pool_size
        self._in_shape = x.shape
        return x.reshape(n, c, h // p, p, w // p, p).mean(axis=(3, 5))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        p = self.pool_size
        grad = grad_out[:, :, :, None, :, None] / (p * p)
        grad = np.broadcast_to(
            grad,
            (
                grad_out.shape[0],
                grad_out.shape[1],
                grad_out.shape[2],
                p,
                grad_out.shape[3],
                p,
            ),
        )
        return grad.reshape(self._in_shape)

"""Minibatch discrimination layer (Salimans et al., 2016).

The paper's CNN discriminators include a minibatch-discrimination layer to
mitigate mode collapse: each sample's features are compared to every other
sample in the batch and a per-sample "closeness" statistic is appended to the
feature vector, letting the discriminator detect generators that produce
near-identical samples.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from . import initializers as init
from .layers import Layer

__all__ = ["MinibatchDiscrimination"]


class MinibatchDiscrimination(Layer):
    """Append cross-batch similarity statistics to flat feature vectors.

    Parameters
    ----------
    num_kernels:
        Number of discrimination kernels ``B``; the layer appends ``B`` extra
        features per sample.
    kernel_dim:
        Dimensionality ``C`` of each kernel's projection space.
    """

    def __init__(
        self,
        num_kernels: int = 16,
        kernel_dim: int = 8,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        if num_kernels <= 0 or kernel_dim <= 0:
            raise ValueError("num_kernels and kernel_dim must be positive")
        self.num_kernels = int(num_kernels)
        self.kernel_dim = int(kernel_dim)

    def compute_output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        if len(input_shape) != 1:
            raise ValueError(
                "MinibatchDiscrimination expects flat inputs, got "
                f"per-sample shape {input_shape}"
            )
        return (input_shape[0] + self.num_kernels,)

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        features = int(input_shape[0])
        self.add_param(
            "T",
            (features, self.num_kernels * self.kernel_dim),
            rng,
            init.normal(stddev=0.05),
        )
        super().build(input_shape, rng)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        del training
        n = x.shape[0]
        b, c = self.num_kernels, self.kernel_dim
        self._x = x
        m = (x @ self.params["T"]).reshape(n, b, c)
        self._m = m
        # diffs[i, j, b, c] = M_i - M_j
        diffs = m[:, None, :, :] - m[None, :, :, :]
        self._sign = np.sign(diffs)
        l1 = np.abs(diffs).sum(axis=-1)
        self._k = np.exp(-l1)
        # o_i[b] = sum_{j != i} exp(-||M_i - M_j||_1); the j = i term is
        # exp(0) = 1 and is removed.
        o = self._k.sum(axis=1) - 1.0
        return np.concatenate([x, o], axis=1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        n = grad_out.shape[0]
        features = self._x.shape[1]
        dx_direct = grad_out[:, :features]
        do = grad_out[:, features:]

        # dK[i, j, b]: o_i[b] sums K[i, j, b] over j (excluding j = i).
        dk = np.repeat(do[:, None, :], n, axis=1)
        idx = np.arange(n)
        dk[idx, idx, :] = 0.0

        dl1 = -self._k * dk
        ddiffs = self._sign * dl1[..., None]
        # M_i appears positively in diffs[i, :, ...] and negatively in
        # diffs[:, i, ...].
        dm = ddiffs.sum(axis=1) - ddiffs.sum(axis=0)

        dm_flat = dm.reshape(n, -1)
        self.grads["T"] += self._x.T @ dm_flat
        return dx_direct + dm_flat @ self.params["T"].T

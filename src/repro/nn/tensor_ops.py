"""Low-level vectorised tensor operations used by the convolution layers.

All image tensors use the NCHW layout: ``(batch, channels, height, width)``.
Convolutions are implemented with the classic im2col / col2im lowering so that
the inner loops run as a handful of large GEMMs instead of Python loops.  The
three primitives below (forward, input-gradient, weight-gradient) are shared
between :class:`~repro.nn.conv.Conv2D` and
:class:`~repro.nn.conv.Conv2DTranspose`, since a transposed convolution is
exactly the input-gradient of a convolution.

Every primitive preserves the dtype of its operands: feed float32 tensors in
(the default precision policy, see :mod:`repro.nn.precision`) and the im2col
buffers and GEMMs stay float32 end-to-end, halving memory traffic relative
to float64.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "conv_output_size",
    "conv_transpose_output_size",
    "im2col",
    "col2im",
    "conv2d_forward",
    "conv2d_input_grad",
    "conv2d_weight_grad",
]


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution along one axis."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"Invalid convolution geometry: size={size}, kernel={kernel}, "
            f"stride={stride}, pad={pad} gives non-positive output {out}"
        )
    return out


def conv_transpose_output_size(
    size: int, kernel: int, stride: int, pad: int, output_padding: int = 0
) -> int:
    """Spatial output size of a transposed convolution along one axis."""
    out = (size - 1) * stride - 2 * pad + kernel + output_padding
    if out <= 0:
        raise ValueError(
            f"Invalid transposed-convolution geometry: size={size}, "
            f"kernel={kernel}, stride={stride}, pad={pad}, "
            f"output_padding={output_padding} gives non-positive output {out}"
        )
    return out


def im2col(
    x: np.ndarray, kh: int, kw: int, stride: int = 1, pad: int = 0
) -> np.ndarray:
    """Lower image patches into a matrix.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.
    kh, kw:
        Kernel height and width.
    stride, pad:
        Stride and symmetric zero padding.

    Returns
    -------
    np.ndarray
        Array of shape ``(N, C, kh, kw, out_h, out_w)``.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kh, stride, pad)
    out_w = conv_output_size(w, kw, stride, pad)
    if pad > 0:
        img = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant")
    else:
        img = x
    col = np.empty((n, c, kh, kw, out_h, out_w), dtype=x.dtype)
    for i in range(kh):
        i_max = i + stride * out_h
        for j in range(kw):
            j_max = j + stride * out_w
            col[:, :, i, j, :, :] = img[:, :, i:i_max:stride, j:j_max:stride]
    return col


def col2im(
    col: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Scatter-add column patches back into an image (adjoint of :func:`im2col`)."""
    n, c, h, w = input_shape
    out_h = conv_output_size(h, kh, stride, pad)
    out_w = conv_output_size(w, kw, stride, pad)
    img = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=col.dtype)
    for i in range(kh):
        i_max = i + stride * out_h
        for j in range(kw):
            j_max = j + stride * out_w
            img[:, :, i:i_max:stride, j:j_max:stride] += col[:, :, i, j, :, :]
    if pad > 0:
        return img[:, :, pad : pad + h, pad : pad + w]
    return img


def conv2d_forward(
    x: np.ndarray, weight: np.ndarray, stride: int = 1, pad: int = 0
) -> np.ndarray:
    """Cross-correlation of ``x`` with ``weight``.

    ``x`` has shape ``(N, C_in, H, W)``; ``weight`` has shape
    ``(C_out, C_in, kh, kw)``.  Returns ``(N, C_out, out_h, out_w)``.
    """
    n = x.shape[0]
    c_out, c_in, kh, kw = weight.shape
    if x.shape[1] != c_in:
        raise ValueError(
            f"Channel mismatch: input has {x.shape[1]} channels, "
            f"weight expects {c_in}"
        )
    out_h = conv_output_size(x.shape[2], kh, stride, pad)
    out_w = conv_output_size(x.shape[3], kw, stride, pad)
    col = im2col(x, kh, kw, stride, pad).reshape(n, c_in * kh * kw, out_h * out_w)
    w_mat = weight.reshape(c_out, c_in * kh * kw)
    out = np.einsum("fk,nkp->nfp", w_mat, col, optimize=True)
    return out.reshape(n, c_out, out_h, out_w)


def conv2d_input_grad(
    grad_out: np.ndarray,
    weight: np.ndarray,
    input_hw: Tuple[int, int],
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Gradient of a convolution w.r.t. its input (a.k.a. transposed conv).

    ``grad_out`` has shape ``(N, C_out, out_h, out_w)``; the result has shape
    ``(N, C_in, *input_hw)``.
    """
    n, c_out, out_h, out_w = grad_out.shape
    c_out_w, c_in, kh, kw = weight.shape
    if c_out != c_out_w:
        raise ValueError(
            f"Channel mismatch: grad has {c_out} channels, weight has {c_out_w}"
        )
    h, w = input_hw
    w_mat = weight.reshape(c_out, c_in * kh * kw)
    grad_mat = grad_out.reshape(n, c_out, out_h * out_w)
    col = np.einsum("fk,nfp->nkp", w_mat, grad_mat, optimize=True)
    col = col.reshape(n, c_in, kh, kw, out_h, out_w)
    return col2im(col, (n, c_in, h, w), kh, kw, stride, pad)


def conv2d_weight_grad(
    x: np.ndarray,
    grad_out: np.ndarray,
    kernel_hw: Tuple[int, int],
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Gradient of a convolution w.r.t. its weight.

    Returns an array of shape ``(C_out, C_in, kh, kw)``.
    """
    n, c_in, _, _ = x.shape
    _, c_out, out_h, out_w = grad_out.shape
    kh, kw = kernel_hw
    col = im2col(x, kh, kw, stride, pad).reshape(n, c_in * kh * kw, out_h * out_w)
    grad_mat = grad_out.reshape(n, c_out, out_h * out_w)
    dw = np.einsum("nfp,nkp->fk", grad_mat, col, optimize=True)
    return dw.reshape(c_out, c_in, kh, kw)

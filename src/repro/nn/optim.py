"""Gradient-descent optimizers operating on :class:`~repro.nn.model.Sequential`.

Optimizer state (momenta, Adam moments) is keyed by the parameter's
``"layer_index.param_name"`` identifier, which stays valid across parameter
serialisation because models update their parameter arrays in place.

The MD-GAN server additionally needs to apply Adam to a *gradient it did not
compute through its own loss* (the gradient assembled from worker error
feedbacks); ``step`` therefore simply consumes whatever is currently stored
in the model's gradient buffers.

Optimizer state (velocity, Adam moments) is allocated with ``zeros_like`` on
the gradient, so it follows the model's precision policy automatically — a
float32 model keeps float32 moments.  A parameter whose shape changed between
steps indicates a wiring bug (e.g. a discriminator swapped against a
different architecture) and raises instead of silently resetting state.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from .model import Sequential

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer.  Subclasses implement :meth:`_update`."""

    def __init__(self, learning_rate: float = 0.001) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        self.learning_rate = float(learning_rate)
        self.iterations = 0

    def step(self, model: Sequential) -> None:
        """Apply one update using the gradients currently stored in ``model``."""
        self.iterations += 1
        for key, param, grad in model.named_parameters_and_grads():
            self._update(key, param, grad)

    def _update(self, key: str, param: np.ndarray, grad: np.ndarray) -> None:
        raise NotImplementedError

    def state_dict(self) -> Dict[str, object]:
        """Snapshot of the optimizer hyper-parameters and internal state."""
        return {"learning_rate": self.learning_rate, "iterations": self.iterations}

    def reset(self) -> None:
        """Clear all accumulated state."""
        self.iterations = 0


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity: Dict[str, np.ndarray] = {}

    def _update(self, key: str, param: np.ndarray, grad: np.ndarray) -> None:
        if self.momentum > 0.0:
            vel = self._velocity.get(key)
            if vel is None:
                vel = np.zeros_like(grad)
            elif vel.shape != grad.shape:
                raise ValueError(
                    f"SGD state for {key!r} has shape {vel.shape} but the "
                    f"gradient has shape {grad.shape}; the model wiring "
                    "changed mid-training (call reset() to start fresh)"
                )
            vel = self.momentum * vel - self.learning_rate * grad
            self._velocity[key] = vel
            param += vel
        else:
            param -= self.learning_rate * grad

    def reset(self) -> None:
        super().reset()
        self._velocity.clear()

    def state_dict(self) -> Dict[str, object]:
        state = super().state_dict()
        state["momentum"] = self.momentum
        return state


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015) — the optimizer used by the paper.

    The defaults ``beta1=0.5`` follow common GAN practice (DCGAN); the CelebA
    experiment in the paper overrides the betas per competitor, which the
    trainers expose through their configuration objects.
    """

    def __init__(
        self,
        learning_rate: float = 0.0002,
        beta1: float = 0.5,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("beta1 and beta2 must be in [0, 1)")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._m: Dict[str, np.ndarray] = {}
        self._v: Dict[str, np.ndarray] = {}

    def _update(self, key: str, param: np.ndarray, grad: np.ndarray) -> None:
        m = self._m.get(key)
        v = self._v.get(key)
        if m is None:
            m = np.zeros_like(grad)
            v = np.zeros_like(grad)
        elif m.shape != grad.shape:
            raise ValueError(
                f"Adam state for {key!r} has shape {m.shape} but the "
                f"gradient has shape {grad.shape}; the model wiring "
                "changed mid-training (call reset() to start fresh)"
            )
        m = self.beta1 * m + (1.0 - self.beta1) * grad
        v = self.beta2 * v + (1.0 - self.beta2) * grad**2
        self._m[key] = m
        self._v[key] = v
        t = self.iterations
        m_hat = m / (1.0 - self.beta1**t)
        v_hat = v / (1.0 - self.beta2**t)
        param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)

    def reset(self) -> None:
        super().reset()
        self._m.clear()
        self._v.clear()

    def state_dict(self) -> Dict[str, object]:
        state = super().state_dict()
        state.update(beta1=self.beta1, beta2=self.beta2, eps=self.eps)
        return state


def make_optimizer(name: str, **kwargs) -> Optimizer:
    """Factory used by experiment configuration files."""
    name = name.lower()
    if name == "adam":
        return Adam(**kwargs)
    if name == "sgd":
        return SGD(**kwargs)
    raise ValueError(f"Unknown optimizer {name!r}; expected 'adam' or 'sgd'")


__all__.append("make_optimizer")

"""Core layers of the NumPy neural-network substrate.

Every layer implements the interface defined by :class:`Layer`:

* ``build(input_shape, rng)`` lazily creates parameters (shapes exclude the
  batch dimension),
* ``forward(x, training)`` computes the output and caches whatever is needed
  for the backward pass,
* ``backward(grad_out)`` accumulates parameter gradients into ``self.grads``
  and **returns the gradient with respect to the layer input**.

Returning input gradients is what lets MD-GAN's workers produce the error
feedback :math:`F_n = \\partial \\tilde B / \\partial x` without holding a
generator, and lets the server chain that feedback through the generator.

Parameters, caches and outputs all live in the layer's ``dtype``, which is
assigned by the owning :class:`~repro.nn.model.Sequential` (or resolved from
the process-wide policy in :mod:`repro.nn.precision` when a layer is built
standalone).  Forward/backward implementations are written to preserve that
dtype — no hidden float64 upcasts on the hot path.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from . import initializers as init
from .precision import resolve_dtype

__all__ = [
    "Layer",
    "Dense",
    "Flatten",
    "Reshape",
    "Dropout",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Softmax",
    "BatchNorm",
    "LayerNorm",
    "UpSampling2D",
    "GaussianNoise",
]


class Layer:
    """Base class for all layers.

    Parameters live in ``self.params`` and their gradients in ``self.grads``;
    both are dictionaries keyed by parameter name with identically shaped
    arrays.  Parameter arrays are never replaced after :meth:`build` — they
    are updated in place — so optimizers may key their state on the arrays'
    owning ``(layer, name)`` pair.
    """

    def __init__(self, name: Optional[str] = None) -> None:
        self.name = name or self.__class__.__name__
        self.params: Dict[str, np.ndarray] = {}
        self.grads: Dict[str, np.ndarray] = {}
        self.built = False
        self.input_shape: Optional[Tuple[int, ...]] = None
        self.output_shape: Optional[Tuple[int, ...]] = None
        #: Floating dtype of parameters/gradients; assigned by the owning
        #: model before build, else resolved from the default policy.
        self.dtype: Optional[np.dtype] = None

    def _resolved_dtype(self) -> np.dtype:
        if self.dtype is None:
            self.dtype = resolve_dtype(None)
        return self.dtype

    # -- lifecycle ---------------------------------------------------------
    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        """Create parameters for the given per-sample input shape."""
        del rng
        self._resolved_dtype()
        self.input_shape = tuple(input_shape)
        self.output_shape = self.compute_output_shape(self.input_shape)
        self.built = True

    def compute_output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Per-sample output shape for the given per-sample input shape."""
        return tuple(input_shape)

    # -- computation -------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # -- utilities ---------------------------------------------------------
    def zero_grad(self) -> None:
        """Reset all parameter gradients to zero."""
        for key, value in self.params.items():
            if key not in self.grads or self.grads[key].shape != value.shape:
                self.grads[key] = np.zeros_like(value)
            else:
                self.grads[key].fill(0.0)

    def add_param(
        self,
        name: str,
        shape: Tuple[int, ...],
        rng: np.random.Generator,
        initializer=init.glorot_uniform,
    ) -> np.ndarray:
        """Create and register a parameter plus its gradient buffer."""
        initializer = init.get_initializer(initializer)
        value = np.asarray(initializer(shape, rng), dtype=self._resolved_dtype())
        self.params[name] = value
        self.grads[name] = np.zeros_like(value)
        return value

    @property
    def num_params(self) -> int:
        """Total number of scalar parameters in this layer."""
        return int(sum(p.size for p in self.params.values()))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{self.__class__.__name__}(name={self.name!r}, params={self.num_params})"


class Dense(Layer):
    """Fully connected layer ``y = x @ W + b``."""

    def __init__(
        self,
        units: int,
        use_bias: bool = True,
        kernel_initializer=init.glorot_uniform,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        if units <= 0:
            raise ValueError(f"units must be positive, got {units}")
        self.units = int(units)
        self.use_bias = bool(use_bias)
        self.kernel_initializer = kernel_initializer
        self._x: Optional[np.ndarray] = None

    def compute_output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        if len(input_shape) != 1:
            raise ValueError(
                f"Dense expects flat inputs, got per-sample shape {input_shape}"
            )
        return (self.units,)

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        fan_in = int(input_shape[0])
        self.add_param("W", (fan_in, self.units), rng, self.kernel_initializer)
        if self.use_bias:
            self.add_param("b", (self.units,), rng, init.zeros)
        super().build(input_shape, rng)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        del training
        self._x = x
        out = x @ self.params["W"]
        if self.use_bias:
            out = out + self.params["b"]
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.grads["W"] += self._x.T @ grad_out
        if self.use_bias:
            self.grads["b"] += grad_out.sum(axis=0)
        return grad_out @ self.params["W"].T


class Flatten(Layer):
    """Flatten every per-sample tensor to a vector."""

    def compute_output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return (int(np.prod(input_shape)),)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        del training
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out.reshape(self._shape)


class Reshape(Layer):
    """Reshape per-sample tensors to ``target_shape`` (batch axis preserved)."""

    def __init__(self, target_shape: Tuple[int, ...], name: Optional[str] = None) -> None:
        super().__init__(name)
        self.target_shape = tuple(int(s) for s in target_shape)

    def compute_output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        if int(np.prod(input_shape)) != int(np.prod(self.target_shape)):
            raise ValueError(
                f"Cannot reshape per-sample shape {input_shape} "
                f"({int(np.prod(input_shape))} values) to {self.target_shape}"
            )
        return self.target_shape

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        del training
        self._shape = x.shape
        return x.reshape((x.shape[0],) + self.target_shape)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out.reshape(self._shape)


class Dropout(Layer):
    """Inverted dropout; identity at evaluation time."""

    def __init__(self, rate: float, name: Optional[str] = None) -> None:
        super().__init__(name)
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"Dropout rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self._mask: Optional[np.ndarray] = None
        self._rng = np.random.default_rng(0)

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        # Keep a dedicated stream so dropout masks do not perturb the
        # initialisation stream shared with other layers.
        self._rng = np.random.default_rng(rng.integers(0, 2**63 - 1))
        super().build(input_shape, rng)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        mask = (self._rng.random(x.shape) < keep).astype(x.dtype)
        mask /= np.asarray(keep, dtype=x.dtype)
        self._mask = mask
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask


class ReLU(Layer):
    """Rectified linear unit."""

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        del training
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * self._mask


class LeakyReLU(Layer):
    """Leaky rectified linear unit with negative slope ``alpha``."""

    def __init__(self, alpha: float = 0.2, name: Optional[str] = None) -> None:
        super().__init__(name)
        self.alpha = float(alpha)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        del training
        self._mask = x > 0
        return np.where(self._mask, x, self.alpha * x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return np.where(self._mask, grad_out, self.alpha * grad_out)


class Sigmoid(Layer):
    """Logistic sigmoid activation."""

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        del training
        out = np.empty_like(x)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        self._out = out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * self._out * (1.0 - self._out)


class Tanh(Layer):
    """Hyperbolic tangent activation (generator output nonlinearity)."""

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        del training
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * (1.0 - self._out**2)


class Softmax(Layer):
    """Softmax over the last axis."""

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        del training
        shifted = x - x.max(axis=-1, keepdims=True)
        ex = np.exp(shifted)
        self._out = ex / ex.sum(axis=-1, keepdims=True)
        return self._out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        s = self._out
        dot = (grad_out * s).sum(axis=-1, keepdims=True)
        return s * (grad_out - dot)


class BatchNorm(Layer):
    """Batch normalisation over all axes except the channel axis.

    Works on ``(N, C)`` dense activations and ``(N, C, H, W)`` images.  Uses
    exponential moving averages of mean/variance at evaluation time, as in
    Keras.
    """

    def __init__(
        self,
        momentum: float = 0.9,
        eps: float = 1e-5,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        self.momentum = float(momentum)
        self.eps = float(eps)
        self.running_mean: Optional[np.ndarray] = None
        self.running_var: Optional[np.ndarray] = None

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        channels = int(input_shape[0])
        self.add_param("gamma", (channels,), rng, init.ones)
        self.add_param("beta", (channels,), rng, init.zeros)
        self.running_mean = np.zeros(channels, dtype=self._resolved_dtype())
        self.running_var = np.ones(channels, dtype=self._resolved_dtype())
        super().build(input_shape, rng)

    def _reduce_axes(self, ndim: int) -> Tuple[int, ...]:
        return (0,) + tuple(range(2, ndim))

    def _bshape(self, ndim: int) -> Tuple[int, ...]:
        return (1, -1) + (1,) * (ndim - 2)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        axes = self._reduce_axes(x.ndim)
        bshape = self._bshape(x.ndim)
        if training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean = (
                self.momentum * self.running_mean + (1.0 - self.momentum) * mean
            )
            self.running_var = (
                self.momentum * self.running_var + (1.0 - self.momentum) * var
            )
        else:
            mean = self.running_mean
            var = self.running_var
        self._std = np.sqrt(var + self.eps).reshape(bshape)
        self._xhat = (x - mean.reshape(bshape)) / self._std
        self._m = x.size // x.shape[1]
        self._training = training
        return self.params["gamma"].reshape(bshape) * self._xhat + self.params[
            "beta"
        ].reshape(bshape)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        axes = self._reduce_axes(grad_out.ndim)
        bshape = self._bshape(grad_out.ndim)
        self.grads["gamma"] += (grad_out * self._xhat).sum(axis=axes)
        self.grads["beta"] += grad_out.sum(axis=axes)
        gamma = self.params["gamma"].reshape(bshape)
        dxhat = grad_out * gamma
        if not self._training:
            return dxhat / self._std
        m = float(self._m)
        sum_dxhat = dxhat.sum(axis=axes).reshape(bshape)
        sum_dxhat_xhat = (dxhat * self._xhat).sum(axis=axes).reshape(bshape)
        return (dxhat - sum_dxhat / m - self._xhat * sum_dxhat_xhat / m) / self._std


class LayerNorm(Layer):
    """Layer normalisation over all per-sample axes."""

    def __init__(self, eps: float = 1e-5, name: Optional[str] = None) -> None:
        super().__init__(name)
        self.eps = float(eps)

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        self.add_param("gamma", tuple(input_shape), rng, init.ones)
        self.add_param("beta", tuple(input_shape), rng, init.zeros)
        super().build(input_shape, rng)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        del training
        axes = tuple(range(1, x.ndim))
        mean = x.mean(axis=axes, keepdims=True)
        var = x.var(axis=axes, keepdims=True)
        self._std = np.sqrt(var + self.eps)
        self._xhat = (x - mean) / self._std
        self._m = x[0].size
        return self.params["gamma"] * self._xhat + self.params["beta"]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        axes = tuple(range(1, grad_out.ndim))
        self.grads["gamma"] += (grad_out * self._xhat).sum(axis=0)
        self.grads["beta"] += grad_out.sum(axis=0)
        dxhat = grad_out * self.params["gamma"]
        m = float(self._m)
        sum_dxhat = dxhat.sum(axis=axes, keepdims=True)
        sum_dxhat_xhat = (dxhat * self._xhat).sum(axis=axes, keepdims=True)
        return (dxhat - sum_dxhat / m - self._xhat * sum_dxhat_xhat / m) / self._std


class UpSampling2D(Layer):
    """Nearest-neighbour spatial upsampling by an integer factor."""

    def __init__(self, factor: int = 2, name: Optional[str] = None) -> None:
        super().__init__(name)
        if factor < 1:
            raise ValueError(f"factor must be >= 1, got {factor}")
        self.factor = int(factor)

    def compute_output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        c, h, w = input_shape
        return (c, h * self.factor, w * self.factor)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        del training
        return x.repeat(self.factor, axis=2).repeat(self.factor, axis=3)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        n, c, h, w = grad_out.shape
        f = self.factor
        return grad_out.reshape(n, c, h // f, f, w // f, f).sum(axis=(3, 5))


class GaussianNoise(Layer):
    """Additive Gaussian noise, applied only at training time."""

    def __init__(self, stddev: float = 0.1, name: Optional[str] = None) -> None:
        super().__init__(name)
        self.stddev = float(stddev)
        self._rng = np.random.default_rng(0)

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        self._rng = np.random.default_rng(rng.integers(0, 2**63 - 1))
        super().build(input_shape, rng)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if not training or self.stddev == 0.0:
            return x
        noise = self._rng.normal(0.0, self.stddev, size=x.shape)
        return x + noise.astype(x.dtype, copy=False)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out

"""Sequential model container with flat parameter (de)serialisation.

The container provides the three capabilities the distributed algorithms rely
on:

* ``forward`` / ``backward`` where the backward pass **returns the gradient
  with respect to the model input** (MD-GAN's error feedback, and the chain
  through the generator on the server);
* in-place flat parameter get/set (``get_parameters`` / ``set_parameters``)
  used by FL-GAN's federated averaging and by MD-GAN's discriminator swaps —
  these model exactly what travels over the network;
* parameter-count reporting used by the analytic complexity models.

All parameters, activations and gradients live in the model's ``dtype``,
resolved at construction from the precision policy (float32 by default, see
:mod:`repro.nn.precision`); inputs are cast on entry (a no-op when callers
already supply policy-dtype arrays) and stay in that dtype throughout.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .layers import Layer
from .precision import PrecisionLike, as_dtype, resolve_dtype

__all__ = ["Sequential"]


class Sequential:
    """A feed-forward stack of layers."""

    def __init__(
        self,
        layers: Sequence[Layer],
        input_shape: Optional[Tuple[int, ...]] = None,
        rng: Optional[np.random.Generator] = None,
        name: str = "model",
        dtype: PrecisionLike = None,
    ) -> None:
        self.layers: List[Layer] = list(layers)
        self.name = name
        self.dtype: np.dtype = resolve_dtype(dtype)
        self.built = False
        self.input_shape: Optional[Tuple[int, ...]] = None
        self.output_shape: Optional[Tuple[int, ...]] = None
        if input_shape is not None:
            self.build(input_shape, rng or np.random.default_rng(0))

    # -- lifecycle ---------------------------------------------------------
    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        """Build every layer for a per-sample ``input_shape``."""
        shape = tuple(int(s) for s in input_shape)
        self.input_shape = shape
        for layer in self.layers:
            layer.dtype = self.dtype
            layer.build(shape, rng)
            shape = layer.output_shape
        self.output_shape = shape
        self.built = True

    def _require_built(self) -> None:
        if not self.built:
            raise RuntimeError(
                f"Model {self.name!r} must be built before use; call build()"
            )

    # -- computation -------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        """Run the forward pass, caching intermediates for backward."""
        self._require_built()
        out = as_dtype(x, self.dtype)
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def __call__(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        return self.forward(x, training=training)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Forward pass in evaluation mode (no dropout, running BN stats)."""
        return self.forward(x, training=False)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate ``grad_output`` and return the input gradient.

        Parameter gradients are *accumulated* into each layer's ``grads``;
        call :meth:`zero_grad` before starting a fresh accumulation.
        """
        self._require_built()
        grad = as_dtype(grad_output, self.dtype)
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def zero_grad(self) -> None:
        """Reset gradients of every layer."""
        for layer in self.layers:
            layer.zero_grad()

    # -- parameter access ---------------------------------------------------
    def named_parameters(self) -> Iterator[Tuple[str, np.ndarray]]:
        """Yield ``(key, parameter_array)`` pairs in a deterministic order."""
        for idx, layer in enumerate(self.layers):
            for pname in sorted(layer.params):
                yield f"{idx}.{layer.name}.{pname}", layer.params[pname]

    def named_parameters_and_grads(
        self,
    ) -> Iterator[Tuple[str, np.ndarray, np.ndarray]]:
        """Yield ``(key, parameter, gradient)`` triples."""
        for idx, layer in enumerate(self.layers):
            for pname in sorted(layer.params):
                yield (
                    f"{idx}.{layer.name}.{pname}",
                    layer.params[pname],
                    layer.grads[pname],
                )

    @property
    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return int(sum(p.size for _, p in self.named_parameters()))

    def get_parameters(self) -> np.ndarray:
        """Return all parameters concatenated into one flat policy-dtype vector."""
        self._require_built()
        parts = [p.ravel() for _, p in self.named_parameters()]
        if not parts:
            return np.zeros(0, dtype=self.dtype)
        return np.concatenate(parts)

    def set_parameters(self, flat: np.ndarray) -> None:
        """Load parameters from a flat vector, writing arrays in place."""
        self._require_built()
        flat = as_dtype(flat, self.dtype).ravel()
        expected = self.num_parameters
        if flat.size != expected:
            raise ValueError(
                f"Parameter vector has {flat.size} values; model "
                f"{self.name!r} expects {expected}"
            )
        offset = 0
        for _, param in self.named_parameters():
            size = param.size
            param[...] = flat[offset : offset + size].reshape(param.shape)
            offset += size

    def get_gradients(self) -> np.ndarray:
        """Return all gradients concatenated into one flat vector."""
        self._require_built()
        parts = [g.ravel() for _, _, g in self.named_parameters_and_grads()]
        if not parts:
            return np.zeros(0, dtype=self.dtype)
        return np.concatenate(parts)

    def set_gradients(self, flat: np.ndarray) -> None:
        """Load gradients from a flat vector (used by gradient aggregation)."""
        self._require_built()
        flat = as_dtype(flat, self.dtype).ravel()
        if flat.size != self.num_parameters:
            raise ValueError(
                f"Gradient vector has {flat.size} values; model expects "
                f"{self.num_parameters}"
            )
        offset = 0
        for _, _, grad in self.named_parameters_and_grads():
            size = grad.size
            grad[...] = flat[offset : offset + size].reshape(grad.shape)
            offset += size

    # -- structural helpers --------------------------------------------------
    def clone_architecture(self) -> "Sequential":
        """Return an *unbuilt* copy sharing no state with this model.

        Layers are re-created through a shallow pickle-free copy: each layer
        class is re-instantiated from its constructor arguments captured in
        ``__dict__`` minus runtime state.  For simplicity (and because all
        repo layers follow it) the convention is that constructor arguments
        are stored verbatim as attributes.
        """
        import copy

        new_layers = []
        for layer in self.layers:
            clone = copy.copy(layer)
            clone.params = {}
            clone.grads = {}
            clone.built = False
            clone.input_shape = None
            clone.output_shape = None
            clone.dtype = None
            new_layers.append(clone)
        return Sequential(new_layers, name=f"{self.name}_clone", dtype=self.dtype)

    def summary(self) -> str:
        """Human-readable layer/parameter summary (like ``keras.summary``)."""
        self._require_built()
        lines = [f"Model: {self.name}"]
        lines.append(f"{'layer':<28}{'output shape':<20}{'params':>12}")
        lines.append("-" * 60)
        for layer in self.layers:
            lines.append(
                f"{layer.name:<28}{str(layer.output_shape):<20}{layer.num_params:>12,}"
            )
        lines.append("-" * 60)
        lines.append(f"Total parameters: {self.num_parameters:,}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        status = "built" if self.built else "unbuilt"
        return (
            f"Sequential(name={self.name!r}, layers={len(self.layers)}, "
            f"{status}, params={self.num_parameters if self.built else '?'})"
        )

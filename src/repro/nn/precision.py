"""Precision policy for the NumPy neural-network substrate.

The paper's traffic model counts every transmitted scalar as a 32-bit float
(:data:`repro.nn.serialize.FLOAT_BYTES`), and its TensorFlow implementation
trains in float32.  This module makes the compute side match: a
:class:`Precision` policy selects the dtype used for parameters, activations,
gradients and optimizer state, with **float32 as the default** (the fast path
— im2col/GEMM hot loops move half the bytes) and float64 available as an
opt-in for numerics-sensitive work such as finite-difference gradient checks.

The policy can be set three ways, in increasing order of precedence:

* the process-wide default (:func:`set_default_precision`, initially
  ``float32``),
* a :func:`precision_scope` context manager for temporary overrides,
* an explicit ``dtype=``/``precision=`` argument on :class:`~repro.nn.model.
  Sequential`, :class:`~repro.models.base.GANFactory` model builders, or
  :class:`~repro.core.config.TrainingConfig`.

Loss functions intentionally keep their *internal* scalar math in float64
(the arrays involved are tiny — one logit row per sample) and cast the
returned gradients back to the caller's dtype, so switching policy never
destabilises the log/exp arithmetic.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Iterator, Optional, Union

import numpy as np

__all__ = [
    "Precision",
    "FLOAT32",
    "FLOAT64",
    "PrecisionLike",
    "resolve_precision",
    "resolve_dtype",
    "get_default_precision",
    "set_default_precision",
    "precision_scope",
    "as_dtype",
]


@dataclass(frozen=True)
class Precision:
    """A named floating-point policy (dtype plus wire/bookkeeping metadata)."""

    name: str
    dtype: np.dtype

    @property
    def itemsize(self) -> int:
        """Bytes per scalar held in memory under this policy."""
        return int(self.dtype.itemsize)

    def __str__(self) -> str:
        return self.name


FLOAT32 = Precision("float32", np.dtype(np.float32))
FLOAT64 = Precision("float64", np.dtype(np.float64))

_BY_NAME = {"float32": FLOAT32, "float64": FLOAT64}

PrecisionLike = Union[None, str, np.dtype, type, Precision]

_default: Precision = FLOAT32


def resolve_precision(spec: PrecisionLike = None) -> Precision:
    """Resolve a precision spec to a :class:`Precision`.

    ``None`` selects the current process-wide default; strings, numpy dtypes
    and scalar types (``np.float32``/``np.float64``) are accepted.
    """
    if spec is None:
        return _default
    if isinstance(spec, Precision):
        return spec
    try:
        name = np.dtype(spec).name
    except TypeError as exc:
        raise ValueError(f"Cannot interpret {spec!r} as a precision policy") from exc
    try:
        return _BY_NAME[name]
    except KeyError as exc:
        raise ValueError(
            f"Unsupported precision {name!r}; expected one of {sorted(_BY_NAME)}"
        ) from exc


def resolve_dtype(spec: PrecisionLike = None) -> np.dtype:
    """Shorthand for ``resolve_precision(spec).dtype``."""
    return resolve_precision(spec).dtype


def get_default_precision() -> Precision:
    """Return the current process-wide precision policy."""
    return _default


def set_default_precision(spec: PrecisionLike) -> Precision:
    """Set the process-wide precision policy and return it."""
    global _default
    _default = resolve_precision(spec)
    return _default


@contextlib.contextmanager
def precision_scope(spec: PrecisionLike) -> Iterator[Precision]:
    """Temporarily switch the process-wide precision policy."""
    global _default
    previous = _default
    _default = resolve_precision(spec)
    try:
        yield _default
    finally:
        _default = previous


def as_dtype(array: np.ndarray, dtype: Optional[np.dtype]) -> np.ndarray:
    """Return ``array`` viewed in ``dtype``, copying only when necessary."""
    arr = np.asarray(array)
    if dtype is None or arr.dtype == dtype:
        return arr
    return arr.astype(dtype)

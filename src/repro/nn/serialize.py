"""Parameter-vector helpers shared by the distributed trainers.

The distributed algorithms ship model parameters (FL-GAN rounds, MD-GAN
discriminator swaps) as flat float vectors.  These helpers centralise the
byte-size accounting used by the traffic meters and provide simple averaging
utilities for federated aggregation.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .model import Sequential

__all__ = [
    "FLOAT_BYTES",
    "parameter_bytes",
    "vector_bytes",
    "average_parameters",
    "weighted_average_parameters",
    "copy_parameters",
]

#: Size in bytes of one transmitted scalar.  The paper counts parameters and
#: data features in 32-bit floats; all byte figures in the analytic model and
#: the traffic meters use this constant.  Under the default float32 precision
#: policy (see :mod:`repro.nn.precision`) in-memory payloads now genuinely
#: occupy this many bytes per scalar, so simulated and real sizes agree.
FLOAT_BYTES = 4


def parameter_bytes(model: Sequential) -> int:
    """Number of bytes required to ship every parameter of ``model``."""
    return model.num_parameters * FLOAT_BYTES


def vector_bytes(array: np.ndarray) -> int:
    """Number of bytes required to ship ``array`` as 32-bit floats."""
    return int(np.asarray(array).size) * FLOAT_BYTES


def average_parameters(vectors: Sequence[np.ndarray]) -> np.ndarray:
    """Uniform average of flat parameter vectors (FedAvg aggregation)."""
    if not vectors:
        raise ValueError("Cannot average an empty collection of parameter vectors")
    flat = [np.asarray(v).ravel() for v in vectors]
    sizes = {v.size for v in flat}
    if len(sizes) != 1:
        raise ValueError(f"Parameter vectors have inconsistent sizes: {sizes}")
    out_dtype = np.result_type(np.float32, *flat)
    # Accumulate in float64 regardless of policy: averaging many float32
    # vectors in float32 loses bits needlessly for a one-off reduction.
    return np.stack(flat).mean(axis=0, dtype=np.float64).astype(out_dtype, copy=False)


def weighted_average_parameters(
    vectors: Sequence[np.ndarray], weights: Iterable[float]
) -> np.ndarray:
    """Weighted average of flat parameter vectors.

    Weights are normalised to sum to one; they typically carry the local
    dataset sizes, matching the FedAvg formulation for unbalanced shards.
    """
    weights = np.asarray(list(weights), dtype=np.float64)
    if len(vectors) != weights.size:
        raise ValueError(
            f"Got {len(vectors)} vectors but {weights.size} weights"
        )
    if np.any(weights < 0) or weights.sum() <= 0:
        raise ValueError("Weights must be non-negative and sum to a positive value")
    weights = weights / weights.sum()
    flat = [np.asarray(v).ravel() for v in vectors]
    out_dtype = np.result_type(np.float32, *flat)
    stacked = np.stack(flat).astype(np.float64, copy=False)
    return (weights[:, None] * stacked).sum(axis=0).astype(out_dtype, copy=False)


def copy_parameters(source: Sequential, destination: Sequential) -> None:
    """Copy parameters from one model into another of identical architecture."""
    destination.set_parameters(source.get_parameters())

"""``repro.nn`` — a from-scratch, NumPy-only neural-network substrate.

The package provides everything the MD-GAN reproduction needs from a deep
learning framework: layers (dense, convolutional, transposed-convolutional,
normalisation, minibatch discrimination), GAN losses, Adam/SGD optimizers and
a :class:`Sequential` container whose backward pass returns input gradients —
the mechanism MD-GAN's error feedback is built on.

All floating-point tensors follow the precision policy in
:mod:`repro.nn.precision`: float32 by default (matching the paper's 32-bit
wire format and halving GEMM memory traffic), float64 as an explicit opt-in
for numerics-sensitive work (``precision_scope("float64")`` or
``Sequential(..., dtype=np.float64)``).
"""

from . import initializers
from .conv import AvgPool2D, Conv2D, Conv2DTranspose, MaxPool2D, same_padding
from .layers import (
    BatchNorm,
    Dense,
    Dropout,
    Flatten,
    GaussianNoise,
    Layer,
    LayerNorm,
    LeakyReLU,
    ReLU,
    Reshape,
    Sigmoid,
    Softmax,
    Tanh,
    UpSampling2D,
)
from .losses import (
    ACGANLoss,
    GANLoss,
    bce_with_logits,
    mse_loss,
    sigmoid,
    softmax_cross_entropy,
)
from .minibatch import MinibatchDiscrimination
from .model import Sequential
from .optim import SGD, Adam, Optimizer, make_optimizer
from .precision import (
    FLOAT32,
    FLOAT64,
    Precision,
    get_default_precision,
    precision_scope,
    resolve_dtype,
    resolve_precision,
    set_default_precision,
)
from .serialize import (
    FLOAT_BYTES,
    average_parameters,
    copy_parameters,
    parameter_bytes,
    vector_bytes,
    weighted_average_parameters,
)

__all__ = [
    "initializers",
    "Layer",
    "Dense",
    "Flatten",
    "Reshape",
    "Dropout",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Softmax",
    "BatchNorm",
    "LayerNorm",
    "UpSampling2D",
    "GaussianNoise",
    "Conv2D",
    "Conv2DTranspose",
    "MaxPool2D",
    "AvgPool2D",
    "same_padding",
    "MinibatchDiscrimination",
    "Sequential",
    "Optimizer",
    "SGD",
    "Adam",
    "make_optimizer",
    "GANLoss",
    "ACGANLoss",
    "bce_with_logits",
    "softmax_cross_entropy",
    "mse_loss",
    "sigmoid",
    "Precision",
    "FLOAT32",
    "FLOAT64",
    "resolve_precision",
    "resolve_dtype",
    "get_default_precision",
    "set_default_precision",
    "precision_scope",
    "FLOAT_BYTES",
    "parameter_bytes",
    "vector_bytes",
    "average_parameters",
    "weighted_average_parameters",
    "copy_parameters",
]

"""Parameter initializers for the NumPy neural-network substrate.

Each initializer is a callable ``init(shape, rng) -> np.ndarray`` where ``rng``
is a :class:`numpy.random.Generator`.  Fan-in / fan-out are derived from the
shape using the same conventions as Keras (the framework used by the paper):

* Dense kernels have shape ``(fan_in, fan_out)``.
* Conv kernels have shape ``(out_channels, in_channels, kh, kw)``.
* Transposed-conv kernels have shape ``(in_channels, out_channels, kh, kw)``.

Deterministic initializers (``zeros``/``ones``/``constant``) materialise
arrays in the current default precision policy; random draws come out of the
generator in float64 and are cast to the owning layer's dtype by
``Layer.add_param``, which performs the authoritative cast in all cases.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from .precision import resolve_dtype

__all__ = [
    "compute_fans",
    "zeros",
    "ones",
    "constant",
    "normal",
    "uniform",
    "glorot_uniform",
    "glorot_normal",
    "he_uniform",
    "he_normal",
    "get_initializer",
]

Initializer = Callable[[Tuple[int, ...], np.random.Generator], np.ndarray]


def compute_fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Return ``(fan_in, fan_out)`` for a parameter tensor shape.

    For 2-D kernels the first axis is fan-in and the second fan-out.  For 4-D
    convolution kernels the receptive-field size multiplies both fans.
    """
    if len(shape) == 0:
        return 1, 1
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    # Convolution-style kernel: (c_out, c_in, kh, kw) or (c_in, c_out, kh, kw).
    receptive = int(np.prod(shape[2:]))
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def zeros(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """All-zeros initializer (used for biases)."""
    del rng
    return np.zeros(shape, dtype=resolve_dtype(None))


def ones(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """All-ones initializer (used for batch-norm scale)."""
    del rng
    return np.ones(shape, dtype=resolve_dtype(None))


def constant(value: float) -> Initializer:
    """Return an initializer filling the tensor with ``value``."""

    def _init(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        del rng
        return np.full(shape, float(value), dtype=resolve_dtype(None))

    return _init


def normal(stddev: float = 0.02, mean: float = 0.0) -> Initializer:
    """Gaussian initializer with the DCGAN-style default ``stddev=0.02``."""

    def _init(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        return rng.normal(mean, stddev, size=shape)

    return _init


def uniform(limit: float = 0.05) -> Initializer:
    """Uniform initializer on ``[-limit, limit]``."""

    def _init(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(-limit, limit, size=shape)

    return _init


def glorot_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initializer (Keras default for Dense/Conv)."""
    fan_in, fan_out = compute_fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def glorot_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier normal initializer."""
    fan_in, fan_out = compute_fans(shape)
    stddev = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, stddev, size=shape)


def he_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He uniform initializer, suited to ReLU-family activations."""
    fan_in, _ = compute_fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def he_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He normal initializer, suited to ReLU-family activations."""
    fan_in, _ = compute_fans(shape)
    stddev = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, stddev, size=shape)


_NAMED: dict[str, Initializer] = {
    "zeros": zeros,
    "ones": ones,
    "glorot_uniform": glorot_uniform,
    "glorot_normal": glorot_normal,
    "he_uniform": he_uniform,
    "he_normal": he_normal,
}


def get_initializer(name_or_fn) -> Initializer:
    """Resolve a named initializer or pass a callable through unchanged."""
    if callable(name_or_fn):
        return name_or_fn
    try:
        return _NAMED[str(name_or_fn)]
    except KeyError as exc:
        raise ValueError(
            f"Unknown initializer {name_or_fn!r}; known: {sorted(_NAMED)}"
        ) from exc

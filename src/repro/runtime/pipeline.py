"""Pipelined execution mode: overlap server work with worker compute.

The synchronous trainers are strictly phase-serial inside one global
iteration: the server generates ``k`` batches, *waits* for every worker's
discriminator steps and feedback, then aggregates — so the server sits idle
while the workers compute and vice versa, on every backend.  This module
provides the building blocks for the opt-in **pipelined** mode
(``TrainingConfig(pipeline_depth=d)`` / ``--pipeline-depth d``) in which the
server runs ahead of the workers by up to ``d`` iterations:

* while the workers compute iteration ``t`` (dispatched asynchronously
  through :meth:`~repro.runtime.backend.ExecutorBackend.submit_ordered` or
  :meth:`~repro.runtime.resident.ResidentBackend.start_steps`), the server
  pre-generates the batches for iterations ``t+1 .. t+d`` into a
  :class:`BatchAheadQueue`;
* batches consumed from the queue are **stale**: the batch set for iteration
  ``t`` was produced by a generator that had only absorbed the feedback of
  iterations ``1 .. t-1-s`` (``s`` = staleness, ``<= d``), whereas the
  synchronous schedule always generates with ``s = 0``.  Each iteration's
  staleness is recorded in :class:`~repro.core.history.TrainingHistory` so
  convergence-vs-staleness trade-offs (the paper's Section VII-1 asynchronous
  setting) can be quantified;
* when the queue misses (cold start, post-crash), the immediate generation is
  fanned out across the backend's slots via :func:`fan_out_generation`, which
  is **bitwise identical** to the serial loop (see below).  Backends with a
  concurrent map (``thread``/``process``) fan out through ``map_ordered``;
  the ``resident`` backend routes both its immediate *and* its lookahead
  generation through the pool's dedicated generation op
  (:func:`start_resident_generation`, same bitwise contract, asynchronous),
  so on ``--backend resident`` lookahead generation leaves the trainer
  thread entirely; ``serial`` falls back to the inline loop.

``pipeline_depth = 0`` (the default) keeps the synchronous schedule and is
bitwise identical to all four execution backends' historical behaviour; any
``d > 0`` relaxes that parity — deliberately, behind the explicit opt-in —
while remaining deterministic: for a fixed seed *and* fixed depth, every
backend still produces the same trajectory.

FL-GAN needs no staleness at all: its local iterations between federated
rounds leave the server model untouched, so pipelining there only overlaps
the trainer's merge/bookkeeping with the pool's compute (resident backend;
see :class:`InflightWindow`) and preserves bitwise parity at **every** depth.

Generation fan-out
------------------

``fan_out_generation`` parallelises the server's ``k``-batch generation
(`MDGANTrainer._generate_batches`) across backend slots while reproducing the
serial loop bit for bit:

* all noise/label draws happen first, on the caller's RNG, in the exact order
  the serial loop would make them (forward passes consume no server RNG);
* each batch's forward pass runs on a **deep copy** of the generator, so the
  concurrent passes cannot race on layer activation caches;
* :class:`~repro.nn.layers.BatchNorm` normalises by *batch* statistics in
  training mode, so the generated images are independent of the running
  statistics; the per-batch means/variances are captured by the tasks and
  folded into the caller's generator serially, in batch order, using the
  layer's own update expression — reproducing the serial running-stat
  trajectory exactly.

Generators containing layers whose forward pass consumes a private RNG
(:class:`~repro.nn.layers.Dropout`) cannot be fanned out exactly; for those
(and for non-concurrent backends, or ``k < 2``) ``fan_out_generation``
returns ``None`` and the caller falls back to the serial loop.
"""

from __future__ import annotations

import copy
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..core.gan_ops import GeneratedBatch
from ..models.base import generator_input
from ..nn.layers import BatchNorm, Dropout
from .backend import ExecutorBackend

__all__ = [
    "BatchAheadQueue",
    "PipelineStats",
    "InflightWindow",
    "fan_out_generation",
    "GeneratorHandle",
    "PendingGeneration",
    "start_resident_generation",
    "can_generate_resident",
]


# -- lookahead queue ---------------------------------------------------------------


@dataclass
class _QueuedBatches:
    target_iteration: int
    batches: List[GeneratedBatch]
    generated_at_update: int


class BatchAheadQueue:
    """FIFO queue of pre-generated batch sets keyed by target iteration.

    The pipelined MD-GAN loop fills it while workers compute (one batch set
    per future iteration, up to the configured depth) and pops the entry for
    iteration ``t`` at the top of iteration ``t``.  Each entry remembers the
    server's generator-update counter at generation time; the consumer
    derives the realised staleness as ``updates_now - generated_at_update``
    (missed updates, which is robust to iterations that applied no update).
    Entries for iterations that were skipped are discarded on the next pop.
    """

    def __init__(self) -> None:
        self._entries: List[_QueuedBatches] = []
        #: Highest iteration a batch set was ever generated for; the filler
        #: uses it to keep targets contiguous across pops and skips.
        self.last_target = 0

    def __len__(self) -> int:
        return len(self._entries)

    def put(
        self,
        target_iteration: int,
        batches: List[GeneratedBatch],
        generated_at_update: int,
    ) -> None:
        """Queue ``batches`` for ``target_iteration`` (targets must ascend)."""
        if target_iteration <= self.last_target:
            raise ValueError(
                f"lookahead targets must ascend: got {target_iteration} after "
                f"{self.last_target}"
            )
        self._entries.append(_QueuedBatches(target_iteration, batches, generated_at_update))
        self.last_target = target_iteration

    def pop(self, iteration: int) -> Optional[Tuple[List[GeneratedBatch], int]]:
        """Return ``(batches, generated_at_update)`` for ``iteration``, or ``None``.

        Entries for earlier iterations are dropped (their iteration never
        consumed them — e.g. it ran without participants).
        """
        while self._entries and self._entries[0].target_iteration < iteration:
            self._entries.pop(0)
        if self._entries and self._entries[0].target_iteration == iteration:
            entry = self._entries.pop(0)
            return entry.batches, entry.generated_at_update
        return None

    def clear(self) -> None:
        """Drop every queued batch set and reset the target high-water mark.

        A cleared queue behaves exactly like a freshly constructed one:
        ``last_target`` returns to 0, so a crash-path clear followed by a
        refill at an *earlier* target than the pre-clear high-water mark is
        legitimate and no longer trips the ascending-target check.  (The
        check exists to stop a filler from double-generating a target within
        one queue generation; after a clear there is nothing left to
        double-generate against.)  Pinned by
        ``tests/runtime/test_pipeline_mode.py::TestBatchAheadQueue``.
        """
        self._entries.clear()
        self.last_target = 0


# -- run statistics ----------------------------------------------------------------


@dataclass
class PipelineStats:
    """Counters describing how much pipelining a run actually achieved.

    Summarised into ``TrainingHistory.overlap`` at the end of training so
    experiment reports can tell a genuinely overlapped run from one that
    degenerated to the synchronous schedule (e.g. depth 0, or a non-resident
    FL-GAN run).
    """

    depth: int
    #: Batch sets generated ahead of time, while workers were computing.
    lookahead_generations: int = 0
    #: Batch sets generated on demand at the top of their own iteration
    #: (cold start, or the queue was invalidated/missed).
    immediate_generations: int = 0
    #: Immediate generations that were fanned out across backend slots.
    fanout_generations: int = 0
    #: Lookahead batch sets whose forward passes ran inside resident pool
    #: slots (off the trainer thread) via :func:`start_resident_generation`.
    resident_generations: int = 0
    #: Per-iteration staleness values observed (mirrors the history column).
    staleness_values: List[int] = field(default_factory=list)
    #: Largest number of simultaneously in-flight worker step batches.
    max_in_flight: int = 0

    def observe_in_flight(self, count: int) -> None:
        """Record an in-flight window size."""
        self.max_in_flight = max(self.max_in_flight, count)

    def record_staleness(self, staleness: int) -> None:
        """Record one iteration's batch staleness."""
        self.staleness_values.append(int(staleness))

    def as_overlap_dict(self) -> Dict[str, float]:
        """JSON-friendly summary stored in ``TrainingHistory.overlap``.

        ``iterations`` counts the staleness observations behind the
        aggregates (one per recorded iteration/update), so sweep reports can
        weight or sanity-check the mean/p95/max without re-deriving them
        from the raw history column.
        """
        values = self.staleness_values
        return {
            "pipeline_depth": float(self.depth),
            "lookahead_generations": float(self.lookahead_generations),
            "immediate_generations": float(self.immediate_generations),
            "fanout_generations": float(self.fanout_generations),
            "resident_generations": float(self.resident_generations),
            "max_in_flight": float(self.max_in_flight),
            "mean_staleness": float(np.mean(values)) if values else 0.0,
            "max_staleness": float(max(values)) if values else 0.0,
            "p95_staleness": float(np.percentile(values, 95)) if values else 0.0,
            "iterations": float(len(values)),
        }


# -- in-flight window (FL-GAN) -----------------------------------------------------


class InflightWindow:
    """Bounded FIFO of dispatched-but-unmerged iterations.

    Used by the pipelined FL-GAN loop: up to ``depth`` iterations may stay in
    flight behind the newest dispatch, so the trainer's merge/bookkeeping for
    iteration ``t`` overlaps the pool's compute for ``t+1``.  ``drain``
    yields the oldest entries first, preserving merge order — which is why
    pipelined FL-GAN remains bitwise identical to the synchronous schedule.
    """

    def __init__(self, depth: int) -> None:
        if depth < 0:
            raise ValueError(f"depth must be >= 0, got {depth}")
        self.depth = depth
        self._entries: List[Tuple[Any, ...]] = []

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, entry: Tuple[Any, ...]) -> None:
        """Append a dispatched iteration's bookkeeping tuple."""
        self._entries.append(entry)

    def drain(self, limit: Optional[int] = None):
        """Yield entries FIFO until ``len() <= limit`` (default: the depth)."""
        target = self.depth if limit is None else limit
        while len(self._entries) > target:
            yield self._entries.pop(0)


# -- generation fan-out ------------------------------------------------------------


@dataclass
class _GenerationTask:
    """One batch's forward pass on a private generator copy (picklable)."""

    generator: Any
    g_input: np.ndarray


def _batchnorm_stats(model, x: np.ndarray) -> Tuple[np.ndarray, List]:
    """Forward ``x`` through ``model`` capturing each BatchNorm's batch stats.

    Returns ``(output, [(mean, var), ...])`` with one entry per
    :class:`BatchNorm` layer in layer order.  The mean/var are computed with
    the exact expressions the layer itself uses, on the exact same inputs, so
    folding them back reproduces the serial running-stat updates bitwise.
    """
    from ..nn.precision import as_dtype

    stats: List[Tuple[np.ndarray, np.ndarray]] = []
    out = as_dtype(x, model.dtype)
    for layer in model.layers:
        if isinstance(layer, BatchNorm):
            axes = layer._reduce_axes(out.ndim)
            stats.append((out.mean(axis=axes), out.var(axis=axes)))
        out = layer.forward(out, training=True)
    return out, stats


def _run_generation_task(task: _GenerationTask) -> Tuple[np.ndarray, List]:
    """Backend task: forward one batch on the copy, return images + BN stats."""
    return _batchnorm_stats(task.generator, task.g_input)


def _fold_batchnorm_stats(generator, stats_per_batch: List[List]) -> None:
    """Replay the per-batch BatchNorm running-stat updates in batch order."""
    bn_layers = [layer for layer in generator.layers if isinstance(layer, BatchNorm)]
    for stats in stats_per_batch:
        for layer, (mean, var) in zip(bn_layers, stats):
            layer.running_mean = layer.momentum * layer.running_mean + (1.0 - layer.momentum) * mean
            layer.running_var = layer.momentum * layer.running_var + (1.0 - layer.momentum) * var


def can_fan_out(backend: ExecutorBackend, generator, k: int) -> bool:
    """Whether :func:`fan_out_generation` can run exactly for this setup."""
    if k < 2 or not getattr(backend, "concurrent", False):
        return False
    if not getattr(generator, "built", False):
        return False
    # Dropout draws masks from a layer-private RNG whose advancement depends
    # on execution order; copies cannot reproduce the serial stream.
    return not any(isinstance(layer, Dropout) for layer in generator.layers)


def fan_out_generation(
    backend: ExecutorBackend,
    generator,
    factory,
    batch_size: int,
    k: int,
    rng: np.random.Generator,
) -> Optional[List[GeneratedBatch]]:
    """Generate ``k`` batches through the backend, bitwise-equal to the serial loop.

    Draws all noise/labels from ``rng`` first (same order as ``k`` serial
    :func:`~repro.core.gan_ops.sample_generator_images` calls), forwards each
    batch on a deep copy of ``generator`` via ``backend.map_ordered``, then
    folds the captured BatchNorm statistics back into ``generator`` in batch
    order.  Returns ``None`` when exact fan-out is not possible (see
    :func:`can_fan_out`); the caller then uses the serial path.
    """
    if not can_fan_out(backend, generator, k):
        return None
    tasks: List[_GenerationTask] = []
    noises: List[np.ndarray] = []
    labels_list: List[Optional[np.ndarray]] = []
    for _ in range(k):
        noise = rng.normal(0.0, 1.0, size=(batch_size, factory.latent_dim))
        noise = noise.astype(generator.dtype, copy=False)
        labels = (
            rng.integers(0, factory.num_classes, size=batch_size)
            if factory.conditional
            else None
        )
        noises.append(noise)
        labels_list.append(labels)
        tasks.append(
            _GenerationTask(
                generator=copy.deepcopy(generator),
                g_input=generator_input(noise, labels, factory.num_classes),
            )
        )
    outputs = backend.map_ordered(_run_generation_task, tasks)
    _fold_batchnorm_stats(generator, [stats for _, stats in outputs])
    return [
        GeneratedBatch(images=images, noise=noises[j], labels=labels_list[j], batch_index=j)
        for j, (images, _) in enumerate(outputs)
    ]


# -- resident-side generation ------------------------------------------------------
#
# The resident pool's slots only speak the resident protocol, so the map-based
# fan-out above cannot reach them.  ``start_resident_generation`` uses the
# pool's dedicated generation op instead (a generator copy installed once per
# slot, current parameters shipped only when the handle's version says the
# slot copy is stale, per-batch forwards on the slots) while reproducing
# ``fan_out_generation``'s bitwise contract exactly:
# serial noise draws on the caller's RNG, forwards on generator copies, and
# BatchNorm batch statistics folded back into the caller's generator in batch
# order at collect time.  Unlike the map fan-out it is *asynchronous* — the
# returned handle lets the pipelined MD-GAN loop keep lookahead generation in
# flight while it merges worker results — which is what finally moves
# lookahead generation off the trainer thread on ``--backend resident``.

#: Well-known resident key under which the server generator is installed
#: (internal; the public surface is :class:`GeneratorHandle`).
_GENERATOR_KEY = "__server_generator__"


def __getattr__(name: str):
    """Deprecation shim: ``GENERATOR_KEY`` is now :class:`GeneratorHandle`."""
    if name == "GENERATOR_KEY":
        warnings.warn(
            "repro.runtime.pipeline.GENERATOR_KEY is deprecated; pass a "
            "GeneratorHandle to start_generation()/start_resident_generation() "
            "instead of the magic string",
            DeprecationWarning,
            stacklevel=2,
        )
        return _GENERATOR_KEY
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class GeneratorHandle:
    """Typed, versioned identity of a generator installed on pool slots.

    Replaces the old ``GENERATOR_KEY`` magic string.  ``key`` names the
    resident generator copy on each slot (structure installs are tracked per
    slot under it); ``version`` is a monotonic counter identifying the
    current *parameters* of the generator the handle describes.

    The resident backend caches, per ``(key, slot)``, the version whose flat
    parameter vector it last shipped: a request whose handle version matches
    ships **zero parameter bytes** — the slot's copy is already bit-identical
    — while any mismatch re-ships and updates the cache.  Callers must
    therefore :meth:`bump` the handle on *every* mutation of the generator's
    parameters (optimizer step, ``set_parameters``) before the next dispatch;
    a stale version would silently serve old weights.

    ``version=None`` marks the handle *unversioned*: parameters re-ship on
    every request (the pre-handle behaviour, and the safe default when no one
    tracks generator updates).
    """

    key: str = _GENERATOR_KEY
    version: Optional[int] = None

    def bump(self) -> None:
        """Advance the version after a parameter mutation (cache invalidation)."""
        self.version = 0 if self.version is None else self.version + 1


def can_generate_resident(backend, generator, k: int) -> bool:
    """Whether :func:`start_resident_generation` can run exactly for this setup.

    Mirrors :func:`can_fan_out` except that a single batch (``k == 1``)
    still qualifies — even one forward pass is worth moving off the trainer
    thread when it can overlap the merge/aggregation work.
    """
    if k < 1 or not getattr(backend, "supports_resident_generation", False):
        return False
    if not getattr(generator, "built", False):
        return False
    # Dropout draws masks from a layer-private RNG whose advancement depends
    # on execution order; copies cannot reproduce the serial stream.
    return not any(isinstance(layer, Dropout) for layer in generator.layers)


class PendingGeneration:
    """In-flight resident k-batch generation; ``collect()`` finishes it.

    Wraps the backend's :class:`~repro.runtime.resident.PendingSteps` handle
    together with the trainer-side halves of the bitwise contract: the noise
    and labels (drawn serially at dispatch, on the caller's RNG) and the
    deferred BatchNorm fold.  ``collect()`` receives the per-batch
    ``(images, batchnorm_stats)`` replies, folds the statistics into the
    caller's generator in batch order, and returns the finished
    :class:`~repro.core.gan_ops.GeneratedBatch` list — bit-for-bit what the
    serial loop would have produced.
    """

    def __init__(self, handle, generator, noises, labels_list) -> None:
        self._handle = handle
        self._generator = generator
        self._noises = noises
        self._labels = labels_list

    def collect(self) -> List[GeneratedBatch]:
        """Receive the slot replies, fold BatchNorm stats, build the batches."""
        outputs = self._handle.result()
        _fold_batchnorm_stats(self._generator, [stats for _, stats in outputs])
        return [
            GeneratedBatch(
                images=images,
                noise=self._noises[j],
                labels=self._labels[j],
                batch_index=j,
            )
            for j, (images, _) in enumerate(outputs)
        ]


def start_resident_generation(
    backend,
    generator,
    factory,
    batch_size: int,
    k: int,
    rng: np.random.Generator,
    handle: Optional[GeneratorHandle] = None,
) -> Optional[PendingGeneration]:
    """Dispatch ``k``-batch generation onto resident pool slots, non-blocking.

    Draws all noise/labels from ``rng`` first (same order as ``k`` serial
    :func:`~repro.core.gan_ops.sample_generator_images` calls), ships the
    generator inputs to the pool via
    :meth:`~repro.runtime.resident.ResidentBackend.start_generation` (batch
    ``j`` on slot ``j mod pool size``, current parameters attached), and
    returns a :class:`PendingGeneration` whose ``collect()`` yields batches
    bitwise identical to the serial loop.  Returns ``None`` when exact
    resident generation is not possible (see :func:`can_generate_resident`);
    the caller then falls back to the inline/fan-out paths.

    ``handle`` identifies the generator on the pool slots.  A *versioned*
    handle (one whose owner bumps it on every parameter update, as
    ``MDGANTrainer`` and ``repro.serving.GeneratorService`` do) lets the
    backend skip the parameter payload whenever the slot copy is already
    current — bitwise-neutral, since the skip only happens when the shipped
    vector would be identical.  ``None`` builds an unversioned default handle
    whose parameters re-ship every request.
    """
    if not can_generate_resident(backend, generator, k):
        return None
    if handle is None:
        handle = GeneratorHandle()
    noises: List[np.ndarray] = []
    labels_list: List[Optional[np.ndarray]] = []
    g_inputs: List[np.ndarray] = []
    for _ in range(k):
        noise = rng.normal(0.0, 1.0, size=(batch_size, factory.latent_dim))
        noise = noise.astype(generator.dtype, copy=False)
        labels = (
            rng.integers(0, factory.num_classes, size=batch_size)
            if factory.conditional
            else None
        )
        noises.append(noise)
        labels_list.append(labels)
        g_inputs.append(generator_input(noise, labels, factory.num_classes))
    pending = backend.start_generation(
        handle,
        lambda: generator,
        generator.get_parameters(),
        g_inputs,
    )
    return PendingGeneration(pending, generator, noises, labels_list)

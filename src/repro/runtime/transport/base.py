"""Transport interfaces for the resident-pool wire protocol.

The resident protocol (:mod:`repro.runtime.resident`) speaks in pickled
``(op, payload)`` request messages and ``("ok"/"err", payload)`` replies; it
does not care *how* those bytes reach a pool slot.  This module defines the
seam between the two concerns:

* :class:`SlotChannel` — one bidirectional, ordered, message-framed byte
  stream to a single pool slot.  ``multiprocessing.Connection`` satisfies the
  interface structurally (``send_bytes`` / ``recv_bytes`` / ``poll`` /
  ``close``), which is exactly why the pipe transport can hand out raw
  ``Connection`` objects and stay bitwise identical to the pre-refactor
  backend.
* :class:`Transport` — owns the pool's channels (and whatever processes or
  sockets back them), plus the shared async-writer machinery that lets the
  backend queue large sends to *busy* slots without blocking the trainer
  thread (see :meth:`Transport.send_async`).
* :class:`TransportError` — the single error type the backend raises for any
  wire-level failure, carrying the slot index and the in-flight op so pool
  deaths no longer lose *which* slot and operation died.

Concrete transports register themselves in a small name registry
(:func:`register_transport` / :func:`create_transport`), mirroring the
backend registry one level up.
"""

from __future__ import annotations

import queue
import threading
from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "TRANSPORTS",
    "TransportError",
    "SlotChannel",
    "Transport",
    "register_transport",
    "create_transport",
]

#: Names of the available transports, in documentation order.
TRANSPORTS = ("pipe", "tcp")

#: Registry mapping transport name -> factory taking keyword options.
_REGISTRY: Dict[str, Callable[..., "Transport"]] = {}


def register_transport(name: str, factory: Callable[..., "Transport"]) -> None:
    """Register a transport factory under ``name`` (used by :func:`create_transport`)."""
    _REGISTRY[name] = factory


def create_transport(name: str, **options) -> "Transport":
    """Instantiate a transport by name (via the registry).

    Keyword ``options`` are forwarded to the factory; unknown names raise
    with the list of registered transports, mirroring
    :func:`repro.runtime.backend.create_backend`.
    """
    factory = _REGISTRY.get(name)
    if factory is None:
        raise ValueError(
            f"Unknown transport {name!r}; expected one of {sorted(_REGISTRY) or TRANSPORTS}"
        )
    return factory(**options)


class TransportError(RuntimeError):
    """A wire-level failure on the path to a pool slot.

    Subclasses :class:`RuntimeError` so pre-existing callers catching the
    broad type keep working; carries :attr:`slot_index` and :attr:`op` so
    diagnostics can name exactly which slot and in-flight operation died
    (``None`` when unknown, e.g. a connect-phase failure).
    """

    def __init__(
        self,
        message: str,
        slot_index: Optional[int] = None,
        op: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        #: Index of the pool slot whose channel failed (``None`` if unknown).
        self.slot_index = slot_index
        #: Protocol op that was in flight when the failure surfaced.
        self.op = op


class SlotChannel(ABC):
    """One ordered, message-framed byte stream to a single pool slot.

    The contract matches ``multiprocessing.Connection`` (which implements it
    structurally and is used as-is by the pipe transport): messages are
    delivered whole and in order, ``recv_bytes`` raises :class:`EOFError` on
    a cleanly closed peer and :class:`OSError` on anything uglier, and
    ``poll`` never consumes data.
    """

    @abstractmethod
    def send_bytes(self, data: bytes) -> None:
        """Write one framed message; raises ``OSError`` family on failure."""

    @abstractmethod
    def recv_bytes(self) -> bytes:
        """Block for and return one whole message; ``EOFError`` on peer close."""

    @abstractmethod
    def poll(self, timeout: float = 0.0) -> bool:
        """Whether a message is ready to read within ``timeout`` seconds."""

    @abstractmethod
    def close(self) -> None:
        """Release the channel's resources (idempotent)."""


class Transport(ABC):
    """Factory and owner of the pool's slot channels.

    Lifecycle: :meth:`open` builds ``num_slots`` channels exactly once (the
    backend opens lazily on first use); :meth:`close` drains the async writer
    and tears the channels — and any processes or sockets behind them — back
    down.  A later :meth:`open` builds fresh channels (new processes /
    connections): resident state never survives a close, matching the pool's
    fail-stop discipline.

    The async-writer machinery lives here because every transport needs it
    for the same reason: a large dispatch to a slot that is *busy computing*
    can fill the channel's buffer while the slot is itself blocked writing a
    large reply — a send/send deadlock.  ``send_async`` queues the write on a
    daemon thread; the backend flushes the queue before any direct send so
    per-slot FIFO order is preserved, and polls :meth:`take_writer_error`
    while waiting on replies that a failed async send may mean never arrive.
    """

    #: Transport name (one of :data:`TRANSPORTS`).
    name: str = "abstract"
    #: Whether install payloads may ride shared-memory segments.  Only
    #: meaningful when both endpoints share a machine (and kernel): the pipe
    #: transport says yes, sockets say no and installs fall back to riding
    #: the channel itself.
    supports_shm: bool = False
    #: Whether slots can be added after :meth:`open` (elastic membership):
    #: :meth:`open_slot` builds replacement capacity on demand and
    #: :meth:`poll_joiner` admits externally initiated late joiners.
    supports_join: bool = False

    def __init__(self, read_timeout: Optional[float] = None) -> None:
        #: Max seconds to wait for a slot's reply once requested (``None`` =
        #: wait forever).  Consulted by the backend's receive loop; a timeout
        #: is how a dropped or truncated frame surfaces as a clean
        #: :class:`TransportError` instead of a hang.  The clock includes the
        #: slot's compute time for the op, so production values should
        #: comfortably exceed the slowest expected step.
        self.read_timeout = read_timeout
        self._channels: Optional[List[SlotChannel]] = None
        self._write_queue: Optional["queue.Queue"] = None
        self._writer: Optional[threading.Thread] = None
        self._writer_error: Optional[Tuple[Optional[int], str]] = None

    # -- channel lifecycle ------------------------------------------------------
    @abstractmethod
    def _open_channels(self, num_slots: int) -> List[SlotChannel]:
        """Build and return the slot channels (called once, from :meth:`open`)."""

    def _shutdown(self, channels: List[SlotChannel]) -> None:
        """Tear down transport internals after the channels are closed."""

    def open(self, num_slots: int) -> None:
        """Open the transport with ``num_slots`` channels (idempotent)."""
        if self._channels is None:
            self._channels = self._open_channels(num_slots)

    @property
    def started(self) -> bool:
        """Whether :meth:`open` has built the channels."""
        return self._channels is not None

    @property
    def num_slots(self) -> int:
        """Number of open slot channels (0 before :meth:`open`)."""
        return 0 if self._channels is None else len(self._channels)

    def channel(self, slot_index: int) -> SlotChannel:
        """The channel serving ``slot_index`` (transport must be open)."""
        if self._channels is None:
            raise TransportError(
                f"{self.name} transport is not open", slot_index=slot_index
            )
        return self._channels[slot_index]

    def _adopt_channel(self, channel: SlotChannel) -> int:
        """Append one channel opened after :meth:`open`; return its slot index.

        Used by the elastic-membership join paths (:meth:`open_slot` /
        :meth:`poll_joiner` in concrete transports): slot indices are
        append-only, so existing channels never renumber.
        """
        if self._channels is None:
            raise TransportError(f"{self.name} transport is not open")
        self._channels.append(channel)
        return len(self._channels) - 1

    def open_slot(self) -> int:
        """Build one replacement slot channel; return its index.

        Only transports with :attr:`supports_join` implement this (the pipe
        transport respawns a local slot process; loopback tcp spawns and
        accepts a fresh worker).  Externally served transports may raise
        :class:`TransportError` when no replacement can be built locally.
        """
        raise TransportError(f"{self.name} transport cannot open slots after start")

    def poll_joiner(self, timeout: float = 0.0) -> Optional[int]:
        """Admit one externally initiated late joiner, if any is waiting.

        Returns the new channel's slot index, or ``None`` when no joiner
        arrived within ``timeout`` seconds.  The default transport has no
        join path and always returns ``None``.
        """
        return None

    def close(self) -> None:
        """Stop the writer, close every channel and release backing resources."""
        self.stop_writer()
        channels, self._channels = self._channels, None
        if channels is not None:
            for channel in channels:
                try:
                    channel.close()
                except Exception:  # pragma: no cover - defensive cleanup
                    pass
            self._shutdown(channels)

    # -- async writer -----------------------------------------------------------
    def _writer_loop(self) -> None:
        """Drain the async-send queue; record (never raise) send failures."""
        while True:
            item = self._write_queue.get()
            try:
                if item is None:
                    return
                slot_index, channel, data = item
                try:
                    channel.send_bytes(data)
                except Exception as exc:
                    if self._writer_error is None:
                        self._writer_error = (
                            slot_index,
                            f"async send to pool slot {slot_index} failed: {exc!r}",
                        )
            finally:
                self._write_queue.task_done()

    def send_async(self, slot_index: int, data: bytes) -> None:
        """Queue ``data`` for the writer thread instead of writing inline.

        The blocking write moves off the trainer thread so a dispatch to a
        busy slot can never deadlock against that slot's own large reply.
        Failures are recorded for :meth:`take_writer_error` rather than
        raised — the writer has no caller to raise into.
        """
        channel = self.channel(slot_index)
        if self._writer is None or not self._writer.is_alive():
            self._write_queue = queue.Queue()
            self._writer = threading.Thread(
                target=self._writer_loop, name="resident-send", daemon=True
            )
            self._writer.start()
        self._write_queue.put((slot_index, channel, data))

    def flush_sends(self) -> None:
        """Block until every queued async send has been written to its channel."""
        if self._write_queue is not None:
            self._write_queue.join()

    def take_writer_error(self) -> Optional[Tuple[Optional[int], str]]:
        """Pop the recorded async-send failure, if any: ``(slot_index, reason)``."""
        error, self._writer_error = self._writer_error, None
        return error

    def stop_writer(self) -> None:
        """Stop the writer thread, letting queued sends drain or fail first."""
        if self._writer is not None:
            self._write_queue.put(None)
            self._writer.join(timeout=5)
            self._writer = None
            self._write_queue = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{self.__class__.__name__}(name={self.name!r}, slots={self.num_slots})"

"""Local pipe transport: the pre-refactor resident pool, verbatim.

One daemon child process per slot, connected over a duplex
``multiprocessing.Pipe``.  The parent-side ``Connection`` objects are handed
out as the slot channels directly — ``Connection`` implements the
:class:`~repro.runtime.transport.base.SlotChannel` contract structurally
(``send_bytes``/``recv_bytes``/``poll``/``close`` with the same framing and
error semantics) — so the bytes on the wire, the process topology and the
failure modes are bit-for-bit those of the pipe-welded backend this package
was split out of.

The serving-loop target is *injected* (``slot_main``) rather than imported:
the protocol layer lives in :mod:`repro.runtime.resident`, which imports this
module, and the transport must not import it back.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, List, Optional

from .base import Transport, register_transport

__all__ = ["LocalPipeTransport"]


class LocalPipeTransport(Transport):
    """Pool slots as local child processes over ``multiprocessing`` pipes.

    ``slot_main`` is the child's serving loop, called with the child end of
    the pipe; :func:`repro.runtime.resident.serve_slot` in production, a
    stub in transport tests.  Shared-memory installs are supported — both
    endpoints share a kernel, so segment names shipped over the pipe resolve
    on the other side.
    """

    name = "pipe"
    supports_shm = True
    supports_join = True

    def __init__(
        self,
        slot_main: Callable,
        read_timeout: Optional[float] = None,
    ) -> None:
        super().__init__(read_timeout=read_timeout)
        self._slot_main = slot_main
        self._processes: List = []

    def _spawn_slot(self):
        """Start one slot process; return the parent end of its pipe."""
        ctx = multiprocessing.get_context()
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        process = ctx.Process(target=self._slot_main, args=(child_conn,), daemon=True)
        process.start()
        child_conn.close()
        self._processes.append(process)
        return parent_conn

    def _open_channels(self, num_slots: int) -> List:
        return [self._spawn_slot() for _ in range(num_slots)]

    def open_slot(self) -> int:
        """Respawn replacement capacity: one fresh local slot process."""
        return self._adopt_channel(self._spawn_slot())

    def _shutdown(self, channels: List) -> None:
        for process in self._processes:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - defensive cleanup
                process.terminate()
                process.join(timeout=5)
        self._processes = []

"""Deterministic fault injection for transport tests (the chaos harness).

:class:`ChaosTransport` wraps any concrete transport and perturbs its
*outgoing* frames according to a :class:`ChaosSchedule` — a scripted (or
seed-generated, still fully deterministic) map from ``(slot, frame_index)``
to a fault:

* ``drop`` — the frame silently vanishes on the wire (the slot never sees
  the request; surfaces via the transport's ``read_timeout``),
* ``delay`` — the frame is written ``seconds`` late (stragglers, reordered
  completion),
* ``truncate`` — a prefix of the frame is written and the stream is then
  shut down (kills the peer mid-read; on channels without raw socket access
  the stream is simply closed, the closest equivalent),
* ``disconnect`` — the channel is closed at the op boundary, so the write
  fails exactly as against a dead slot.

Frames are counted per slot from the moment the wrapped channel is built
(i.e. after any connection handshake), so ``frame_index`` 0 is the first
protocol frame.  The schedule is consumed as it fires — each action applies
exactly once — which keeps multi-iteration chaos runs reproducible from a
single seed.  Tests may also arm a one-shot fault imperatively via
:meth:`ChaosChannel.force_next`, which is how the older ad-hoc
``_DropOnceChannel`` / ``_TruncateOnceChannel`` wrappers are expressed on
this harness.

This module is a *test* facility: nothing in the production path imports it,
and a schedule-free ``ChaosTransport`` is byte-for-byte transparent.
"""

from __future__ import annotations

import random
import socket
import struct
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .base import SlotChannel, Transport

__all__ = ["ChaosAction", "ChaosSchedule", "ChaosChannel", "ChaosTransport"]

#: Fault kinds a schedule may carry, in documentation order.
CHAOS_KINDS = ("drop", "delay", "truncate", "disconnect")

#: Frame header used for raw truncation (mirrors the tcp transport's).
_HEADER = struct.Struct(">Q")


@dataclass(frozen=True)
class ChaosAction:
    """One scheduled fault at a specific op boundary."""

    #: Pool slot whose channel misbehaves.
    slot: int
    #: 0-based index of the outgoing frame (per slot) the fault applies to.
    frame_index: int
    #: One of :data:`CHAOS_KINDS`.
    kind: str
    #: Delay length for ``kind="delay"`` (seconds).
    seconds: float = 0.05
    #: Fraction of the frame written before shutdown for ``kind="truncate"``.
    fraction: float = 0.5

    def __post_init__(self) -> None:
        """Validate the action."""
        if self.kind not in CHAOS_KINDS:
            raise ValueError(f"kind must be one of {CHAOS_KINDS}, got {self.kind!r}")


class ChaosSchedule:
    """A deterministic ``(slot, frame_index) -> fault`` script.

    Build one explicitly from :class:`ChaosAction` items, or derive one from
    a seed with :meth:`random` — the derivation uses its own
    ``random.Random(seed)`` instance, so the same seed always yields the
    same schedule regardless of global RNG state.
    """

    def __init__(self, actions: Tuple[ChaosAction, ...] = ()) -> None:
        self._by_key: Dict[Tuple[int, int], ChaosAction] = {}
        for action in actions:
            self._by_key[(action.slot, action.frame_index)] = action

    @classmethod
    def random(
        cls,
        seed: int,
        num_slots: int,
        num_frames: int,
        drop: float = 0.0,
        delay: float = 0.0,
        truncate: float = 0.0,
        disconnect: float = 0.0,
        delay_seconds: float = 0.05,
    ) -> "ChaosSchedule":
        """Derive a schedule from ``seed`` with per-frame fault rates."""
        rng = random.Random(seed)
        actions: List[ChaosAction] = []
        for slot in range(num_slots):
            for frame_index in range(num_frames):
                roll = rng.random()
                if roll < drop:
                    kind = "drop"
                elif roll < drop + delay:
                    kind = "delay"
                elif roll < drop + delay + truncate:
                    kind = "truncate"
                elif roll < drop + delay + truncate + disconnect:
                    kind = "disconnect"
                else:
                    continue
                actions.append(
                    ChaosAction(
                        slot=slot,
                        frame_index=frame_index,
                        kind=kind,
                        seconds=delay_seconds,
                    )
                )
        return cls(tuple(actions))

    def take(self, slot: int, frame_index: int) -> Optional[ChaosAction]:
        """Pop the action scheduled at ``(slot, frame_index)``, if any."""
        return self._by_key.pop((slot, frame_index), None)

    def __len__(self) -> int:
        """Number of actions that have not fired yet."""
        return len(self._by_key)


class ChaosChannel(SlotChannel):
    """Channel wrapper applying scheduled faults at send boundaries."""

    def __init__(self, inner: SlotChannel, schedule: ChaosSchedule, slot: int) -> None:
        self._inner = inner
        self._schedule = schedule
        self._slot = slot
        #: Outgoing frames seen so far (the next send has this index).
        self.frames_sent = 0
        self._forced: Optional[ChaosAction] = None

    def force_next(self, kind: str, seconds: float = 0.05, fraction: float = 0.5) -> None:
        """Arm a one-shot fault for the next outgoing frame (imperative API)."""
        self._forced = ChaosAction(
            slot=self._slot, frame_index=-1, kind=kind, seconds=seconds, fraction=fraction
        )

    def _truncate(self, data: bytes, fraction: float) -> None:
        sock = getattr(self._inner, "_sock", None)
        if sock is None:
            # No raw stream access (pipe channels frame atomically): the
            # closest observable fault is the stream dying mid-request.
            self._inner.close()
            return
        frame = _HEADER.pack(len(data)) + data
        sock.settimeout(None)
        sock.sendall(frame[: max(1, int(len(frame) * fraction))])
        sock.shutdown(socket.SHUT_WR)

    def send_bytes(self, data: bytes) -> None:
        """Write one frame, applying any fault scheduled at this boundary."""
        action = self._forced or self._schedule.take(self._slot, self.frames_sent)
        self._forced = None
        self.frames_sent += 1
        if action is None:
            self._inner.send_bytes(data)
        elif action.kind == "drop":
            return  # the frame vanishes on the wire
        elif action.kind == "delay":
            time.sleep(action.seconds)
            self._inner.send_bytes(data)
        elif action.kind == "truncate":
            self._truncate(data, action.fraction)
        else:  # disconnect
            self._inner.close()
            self._inner.send_bytes(data)  # surfaces the dead channel's OSError

    def recv_bytes(self) -> bytes:
        """Delegate to the wrapped channel."""
        return self._inner.recv_bytes()

    def poll(self, timeout: float = 0.0) -> bool:
        """Delegate to the wrapped channel."""
        return self._inner.poll(timeout)

    def close(self) -> None:
        """Delegate to the wrapped channel."""
        self._inner.close()


class ChaosTransport(Transport):
    """Transport wrapper injecting scheduled faults into any inner transport.

    The wrapper owns its *own* async writer (so chaos applies to queued
    sends too) and delegates channel construction, late-join admission and
    teardown to the wrapped transport, wrapping every channel it hands out.
    """

    def __init__(self, inner: Transport, schedule: Optional[ChaosSchedule] = None) -> None:
        super().__init__(read_timeout=inner.read_timeout)
        self.inner = inner
        self.schedule = schedule if schedule is not None else ChaosSchedule()
        self.name = f"chaos+{inner.name}"
        self.supports_shm = inner.supports_shm
        self.supports_join = inner.supports_join

    @property
    def accept_joiners(self) -> bool:
        """Whether the inner transport keeps its join path open (tcp only)."""
        return bool(getattr(self.inner, "accept_joiners", False))

    @accept_joiners.setter
    def accept_joiners(self, value: bool) -> None:
        if hasattr(self.inner, "accept_joiners"):
            self.inner.accept_joiners = value

    def _wrap(self, slot_index: int) -> ChaosChannel:
        return ChaosChannel(self.inner.channel(slot_index), self.schedule, slot_index)

    def _open_channels(self, num_slots: int) -> List[ChaosChannel]:
        self.inner.open(num_slots)
        return [self._wrap(index) for index in range(self.inner.num_slots)]

    def open_slot(self) -> int:
        """Open a replacement slot on the inner transport and wrap it."""
        return self._adopt_channel(self._wrap(self.inner.open_slot()))

    def poll_joiner(self, timeout: float = 0.0) -> Optional[int]:
        """Admit a late joiner through the inner transport, wrapped."""
        slot_index = self.inner.poll_joiner(timeout)
        if slot_index is None:
            return None
        return self._adopt_channel(self._wrap(slot_index))

    def kill_slot(self, slot_index: int) -> None:
        """Sever one slot's connection now (scripted kill, not at a boundary).

        Closes the inner channel — from the server's perspective exactly a
        dead peer — and, when the inner transport runs local slot processes
        indexed by slot (the pipe transport), terminates that process too.
        """
        self.inner.channel(slot_index).close()
        processes = getattr(self.inner, "_processes", None)
        if self.inner.name == "pipe" and processes is not None and slot_index < len(processes):
            process = processes[slot_index]
            if process.is_alive():
                process.terminate()

    def _shutdown(self, channels: List[ChaosChannel]) -> None:
        self.inner.close()

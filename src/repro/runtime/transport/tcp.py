"""TCP socket transport: pool slots on real machines.

The paper's MD-GAN deployment model is a parameter server driving
discriminators on *other hosts*; this transport is that jump.  The resident
protocol's pickled ``(op, payload)`` messages ride length-prefixed frames
over one TCP connection per pool slot:

``frame    = header + body``
``header   = 8-byte big-endian unsigned length of body``
``body     = pickle stream (protocol messages) — no compression, no escaping``

Message framing therefore has the same guarantees as a ``multiprocessing``
pipe — whole messages, in order, ``EOFError`` on clean peer close — which is
what lets the protocol layer run unchanged over either.

Connections open with a **handshake** before any protocol traffic: the
worker sends ``{magic, protocol}``, the server validates both and replies
``{magic, protocol, slot_index, num_slots, session}``.  ``slot_index`` is
assigned in accept order (worker->slot affinity then works exactly as for
local pipes), and ``session`` is a random nonce identifying this pool
incarnation — a worker host can log it, and reconnection into a live pool is
deliberately impossible (fail-stop: a lost slot poisons the pool).  State
epochs need no handshake field beyond that: a freshly connected slot holds
no residents by construction, so the server's install tracking starts empty
and the first ``run`` op ships full state, exactly as for a fresh local
pool.

Shared-memory installs are disabled over TCP (``supports_shm = False``) —
segment names are meaningless across kernels — so install payloads ride the
socket inside the ``run`` message like any other bytes.

Two modes:

* **loopback** (``address=None``) — bind ``127.0.0.1:0`` and spawn one local
  worker-host process per slot.  Used by the parity/fault test suites and by
  anyone who wants socket semantics without a second machine.
* **external** (``address="HOST:PORT"``) — bind the given address and wait
  up to ``connect_timeout`` for ``python -m repro.runtime.worker_host
  --connect HOST:PORT`` processes started elsewhere to connect.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import select
import socket
import struct
from typing import List, Optional, Tuple

from .base import SlotChannel, Transport, TransportError

__all__ = [
    "PROTOCOL_VERSION",
    "HandshakeRefused",
    "TcpChannel",
    "TcpTransport",
    "parse_address",
    "client_handshake",
]

#: Wire-protocol version; bumped on any frame/handshake/op-table change.
PROTOCOL_VERSION = 1

#: Handshake magic identifying this protocol family.
_MAGIC = "repro-resident"

#: Frame header: 8-byte big-endian unsigned body length.
_HEADER = struct.Struct(">Q")

#: Sanity bound on a frame body; a longer length means a corrupt header.
_MAX_FRAME_BYTES = 1 << 40


def parse_address(address: str) -> Tuple[str, int]:
    """Parse ``"HOST:PORT"`` into ``(host, port)``; raises ``ValueError``."""
    host, sep, port_text = address.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"transport address must look like 'HOST:PORT', got {address!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"transport address port must be an integer, got {address!r}"
        ) from None
    if not 0 <= port <= 65535:
        raise ValueError(f"transport address port out of range: {address!r}")
    return host, port


class TcpChannel(SlotChannel):
    """One slot's connection, speaking length-prefixed frames over TCP.

    ``read_timeout`` bounds how long a *started* frame may stall mid-body
    (``None`` = forever); the wait for a frame to begin is always unbounded,
    because an idle slot legitimately stays silent between requests.  A
    truncated frame therefore surfaces as ``OSError``/``TimeoutError`` rather
    than a hang, and a cleanly closed peer as ``EOFError`` — the same
    split ``multiprocessing.Connection`` uses.
    """

    def __init__(self, sock: socket.socket, read_timeout: Optional[float] = None) -> None:
        self._sock = sock
        self.read_timeout = read_timeout
        # The protocol is strict request/reply per slot; disable Nagle so
        # small frames (acks, pull_params of tiny models) don't sit in the
        # kernel waiting to coalesce with bytes that are never coming.
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    def _recv_exact(self, nbytes: int, first_blocking: bool) -> bytes:
        chunks = []
        remaining = nbytes
        first = True
        while remaining:
            self._sock.settimeout(
                None if (first and first_blocking) else self.read_timeout
            )
            chunk = self._sock.recv(min(remaining, 1 << 20))
            if not chunk:
                if first:
                    raise EOFError("peer closed the connection")
                raise OSError(
                    f"connection closed mid-frame ({nbytes - remaining} of "
                    f"{nbytes} bytes received)"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
            first = False
        return b"".join(chunks)

    def send_bytes(self, data: bytes) -> None:
        """Write one frame (header + body); ``OSError`` family on failure."""
        self._sock.settimeout(None)
        self._sock.sendall(_HEADER.pack(len(data)) + data)

    def recv_bytes(self) -> bytes:
        """Block for and return one whole frame body; ``EOFError`` on close."""
        header = self._recv_exact(_HEADER.size, first_blocking=True)
        (length,) = _HEADER.unpack(header)
        if length > _MAX_FRAME_BYTES:
            raise OSError(f"corrupt frame header: claimed body of {length} bytes")
        if length == 0:
            return b""
        return self._recv_exact(length, first_blocking=False)

    def poll(self, timeout: float = 0.0) -> bool:
        """Whether frame bytes are ready to read within ``timeout`` seconds."""
        try:
            ready, _, _ = select.select([self._sock], [], [], timeout)
        except (OSError, ValueError):  # closed socket
            return True  # let recv_bytes surface the real error
        return bool(ready)

    def close(self) -> None:
        """Shut the connection down (idempotent)."""
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()


def _handshake_dump(payload: dict) -> bytes:
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


class HandshakeRefused(TransportError):
    """The server explicitly refused a worker's handshake.

    ``retry`` mirrors the refusal frame's ``"retry"`` flag: a *retriable*
    refusal means the server expects to accept the worker shortly (e.g. a
    rebalance boundary has not been reached yet) and the worker host should
    back off and re-dial instead of giving up.
    """

    def __init__(self, message: str, retry: bool = False) -> None:
        super().__init__(message)
        #: Whether the server invited the worker to retry after a backoff.
        self.retry = retry


def client_handshake(channel: TcpChannel) -> dict:
    """Introduce a worker to the server; return its slot assignment.

    Sends ``{magic, protocol}`` and validates the server's reply, which
    carries ``slot_index``, ``num_slots``, the pool ``session`` nonce and —
    for pools with elastic membership — the membership ``epoch`` the worker
    is joining at.  Raises :class:`HandshakeRefused` on an explicit refusal
    (``retry`` mirrors the server's invitation to re-dial) and
    :class:`TransportError` on a protocol mismatch.
    """
    channel.send_bytes(_handshake_dump({"magic": _MAGIC, "protocol": PROTOCOL_VERSION}))
    reply = pickle.loads(channel.recv_bytes())
    if reply.get("error"):
        raise HandshakeRefused(
            f"server refused worker connection: {reply['error']}",
            retry=bool(reply.get("retry")),
        )
    if reply.get("magic") != _MAGIC or reply.get("protocol") != PROTOCOL_VERSION:
        raise TransportError(
            f"handshake reply mismatch: expected {_MAGIC!r} v{PROTOCOL_VERSION}, "
            f"got {reply.get('magic')!r} v{reply.get('protocol')!r}"
        )
    return reply


def _server_handshake(
    channel: TcpChannel,
    slot_index: int,
    num_slots: int,
    session: str,
    epoch: int = 0,
) -> None:
    """Validate a connecting worker's hello and assign it a slot.

    ``epoch`` is the pool's membership epoch at assignment time (0 for the
    founding accept loop, bumped for every later joiner): together with the
    ``session`` nonce it versions the re-handshake, so a late joiner knows it
    attached to a live incarnation mid-run and starts with no resident state
    (the server's install tracking for its keys begins empty by construction).
    """
    hello = pickle.loads(channel.recv_bytes())
    if hello.get("magic") != _MAGIC or hello.get("protocol") != PROTOCOL_VERSION:
        refusal = (
            f"expected {_MAGIC!r} protocol v{PROTOCOL_VERSION}, got "
            f"{hello.get('magic')!r} v{hello.get('protocol')!r}"
        )
        try:
            channel.send_bytes(_handshake_dump({"error": refusal}))
        except OSError:  # pragma: no cover - peer already gone
            pass
        raise TransportError(
            f"worker handshake failed for slot {slot_index}: {refusal}",
            slot_index=slot_index,
        )
    channel.send_bytes(
        _handshake_dump(
            {
                "magic": _MAGIC,
                "protocol": PROTOCOL_VERSION,
                "slot_index": slot_index,
                "num_slots": num_slots,
                "session": session,
                "epoch": epoch,
            }
        )
    )


class TcpTransport(Transport):
    """Pool slots over TCP connections (loopback-spawned or external hosts).

    With ``address=None`` the transport binds ``127.0.0.1:0`` and spawns one
    local worker-host process per slot — drop-in for the pipe transport, but
    every byte crosses a real socket.  With an explicit ``"HOST:PORT"`` it
    binds there and waits (up to ``connect_timeout``) for externally started
    ``repro.runtime.worker_host`` processes; :meth:`listen` exposes the bound
    address early so callers can print it before blocking in accept.
    """

    name = "tcp"
    supports_shm = False
    supports_join = True

    def __init__(
        self,
        address: Optional[str] = None,
        spawn_workers: Optional[bool] = None,
        connect_timeout: float = 30.0,
        read_timeout: Optional[float] = None,
        accept_joiners: bool = False,
    ) -> None:
        super().__init__(read_timeout=read_timeout)
        self.address = address
        #: Spawn local worker processes at open?  Defaults to ``True`` for
        #: loopback (no address) and ``False`` when an address is given
        #: (the workers are someone else's processes on some other machine).
        self.spawn_workers = (address is None) if spawn_workers is None else spawn_workers
        self.connect_timeout = connect_timeout
        #: Keep the listener open after the founding accepts so late joiners
        #: (``worker_host --connect`` started mid-run) can attach.  Set by
        #: the backend when an elastic membership policy is active; the
        #: default preserves the fail-stop behavior of closing the listener
        #: as soon as the pool is complete.
        self.accept_joiners = accept_joiners
        #: ``(host, port)`` actually bound, available after :meth:`listen`.
        self.bound_address: Optional[Tuple[str, int]] = None
        self._listener: Optional[socket.socket] = None
        self._processes: List = []
        #: Session nonce of the current pool incarnation (set at open).
        self._session: Optional[str] = None
        #: Membership epoch: bumped once per post-open joiner.
        self._epoch = 0

    def listen(self, num_slots: int) -> Tuple[str, int]:
        """Bind the listener (if not yet bound) and return ``(host, port)``."""
        if self._listener is None:
            host, port = parse_address(self.address) if self.address else ("127.0.0.1", 0)
            self._listener = socket.create_server((host, port), backlog=max(num_slots, 1))
            self.bound_address = (host, self._listener.getsockname()[1])
        return self.bound_address

    def _spawn_local_workers(self, num_slots: int) -> None:
        # Lazy import: worker_host imports the protocol layer, which imports
        # this package — resolving it at spawn time keeps imports acyclic.
        from .. import worker_host

        ctx = multiprocessing.get_context()
        for _ in range(num_slots):
            process = ctx.Process(
                target=worker_host.run_worker,
                args=(self.bound_address,),
                kwargs={"connect_timeout": self.connect_timeout},
                daemon=True,
            )
            process.start()
            self._processes.append(process)

    def _open_channels(self, num_slots: int) -> List[TcpChannel]:
        self.listen(num_slots)
        if self.spawn_workers:
            self._spawn_local_workers(num_slots)
        session = os.urandom(8).hex()
        channels: List[TcpChannel] = []
        self._listener.settimeout(self.connect_timeout)
        try:
            for slot_index in range(num_slots):
                try:
                    sock, _ = self._listener.accept()
                except (socket.timeout, TimeoutError) as exc:
                    raise TransportError(
                        f"timed out after {self.connect_timeout}s waiting for "
                        f"worker connections ({slot_index} of {num_slots} "
                        f"connected to {self.bound_address[0]}:{self.bound_address[1]})",
                        slot_index=slot_index,
                    ) from exc
                channel = TcpChannel(sock, read_timeout=self.read_timeout)
                _server_handshake(channel, slot_index, num_slots, session)
                channels.append(channel)
        except BaseException:
            for channel in channels:
                channel.close()
            self.close_listener()
            raise
        self._session = session
        self._epoch = 0
        if not self.accept_joiners:
            self.close_listener()
        return channels

    def _accept_joiner(self, timeout: float) -> Optional[int]:
        """Accept and re-handshake one pending connection; ``None`` if none."""
        self._listener.settimeout(max(timeout, 0.0) or 0.000001)
        try:
            sock, _ = self._listener.accept()
        except (socket.timeout, TimeoutError, BlockingIOError):
            return None
        channel = TcpChannel(sock, read_timeout=self.read_timeout)
        slot_index = self.num_slots
        try:
            _server_handshake(
                channel,
                slot_index,
                self.num_slots + 1,
                self._session,
                epoch=self._epoch + 1,
            )
        except (TransportError, OSError, EOFError, pickle.UnpicklingError):
            # A joiner that cannot complete the versioned re-handshake is
            # refused without affecting the pool.
            channel.close()
            return None
        self._epoch += 1
        return self._adopt_channel(channel)

    def poll_joiner(self, timeout: float = 0.0) -> Optional[int]:
        """Admit one late ``worker_host --connect`` joiner, if one is waiting.

        Requires the listener to still be open (``accept_joiners=True`` at
        open time); otherwise there is no join path and the result is
        ``None``.  A successful admission appends a channel (existing slot
        indices never renumber) and bumps the membership epoch carried by the
        re-handshake.
        """
        if self._listener is None or self._channels is None:
            return None
        return self._accept_joiner(timeout)

    def open_slot(self) -> int:
        """Build one replacement slot: spawn (loopback) and accept a worker.

        In loopback mode a fresh local worker-host process is spawned first;
        in external mode the call simply waits up to ``connect_timeout`` for
        a worker started elsewhere.  Raises :class:`TransportError` when no
        worker connects in time or the listener is closed.
        """
        if self._listener is None:
            raise TransportError(
                "tcp transport cannot open a replacement slot: listener closed "
                "(open the transport with accept_joiners=True)"
            )
        if self.spawn_workers:
            self._spawn_local_workers(1)
        slot_index = self._accept_joiner(self.connect_timeout)
        if slot_index is None:
            raise TransportError(
                f"timed out after {self.connect_timeout}s waiting for a "
                "replacement worker connection"
            )
        return slot_index

    def close_listener(self) -> None:
        """Close the accept socket; established channels are unaffected."""
        if self._listener is not None:
            self._listener.close()
            self._listener = None

    def _shutdown(self, channels: List[TcpChannel]) -> None:
        self.close_listener()
        for process in self._processes:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - defensive cleanup
                process.terminate()
                process.join(timeout=5)
        self._processes = []

"""``repro.runtime.transport`` — pluggable transports for the resident pool.

The resident protocol (install / step / pull / push / generate / mirror ops
with state-epoch invalidation and fail-stop poisoning, see
:mod:`repro.runtime.resident`) is transport-agnostic: it speaks pickled
``(op, payload)`` messages over a :class:`SlotChannel` per pool slot and
never cares what moves the bytes.  This package supplies the channels:

``pipe``
    :class:`LocalPipeTransport` — daemon child processes over
    ``multiprocessing`` pipes; today's local pool, bitwise unchanged, with
    shared-memory install spill available.
``tcp``
    :class:`TcpTransport` — length-prefixed frames over one TCP connection
    per slot, either spawning loopback workers itself or accepting
    ``python -m repro.runtime.worker_host --connect HOST:PORT`` processes
    from other machines.

Transport selection is threaded explicitly through configuration —
``TrainingConfig(transport=..., transport_address=...)`` or the backend's
own attributes; the CLI's ``--transport`` flag travels the same way.  The
process-wide default (:func:`set_transport_default`) survives only as a
deprecated shim for backends built with ``transport=None``.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .base import (
    TRANSPORTS,
    SlotChannel,
    Transport,
    TransportError,
    create_transport,
    register_transport,
)
from .chaos import ChaosAction, ChaosChannel, ChaosSchedule, ChaosTransport
from .local import LocalPipeTransport
from .tcp import (
    PROTOCOL_VERSION,
    HandshakeRefused,
    TcpChannel,
    TcpTransport,
    parse_address,
)

__all__ = [
    "TRANSPORTS",
    "SlotChannel",
    "Transport",
    "TransportError",
    "HandshakeRefused",
    "LocalPipeTransport",
    "TcpChannel",
    "TcpTransport",
    "ChaosAction",
    "ChaosChannel",
    "ChaosSchedule",
    "ChaosTransport",
    "PROTOCOL_VERSION",
    "parse_address",
    "create_transport",
    "register_transport",
    "set_transport_default",
    "transport_default",
]


def _pipe_factory(slot_main=None, **options) -> LocalPipeTransport:
    if slot_main is None:
        # Lazy: the protocol layer imports this package; resolving its
        # serving loop at build time keeps the imports acyclic.
        from ..resident import serve_slot as slot_main
    options.pop("address", None)  # pipes are always local; accepted, ignored
    options.pop("connect_timeout", None)
    return LocalPipeTransport(slot_main, **options)


def _tcp_factory(slot_main=None, address=None, **options) -> TcpTransport:
    # ``slot_main`` is pipe-specific (TCP workers run the serving loop in
    # worker_host); accepted and dropped so factories share a signature.
    return TcpTransport(address=address, **options)


register_transport("pipe", _pipe_factory)
register_transport("tcp", _tcp_factory)


#: Process-wide ``(transport_name, address)`` default for resident backends
#: built without an explicit ``transport=``.
_TRANSPORT_DEFAULT: Tuple[str, Optional[str]] = ("pipe", None)


def set_transport_default(name: str, address: Optional[str] = None) -> None:
    """Deprecated: set the process-wide default transport for new pools.

    Process-global mutation has been replaced by explicit config threading —
    set ``TrainingConfig(transport=..., transport_address=...)`` (or the
    backend's ``transport`` / ``transport_address`` attributes) instead.
    Backends whose ``transport`` attribute is ``None`` still follow this
    process-wide default for compatibility.
    """
    import warnings

    warnings.warn(
        "set_transport_default is deprecated; pass transport=/"
        "transport_address= through TrainingConfig / ResidentBackend instead "
        "of mutating the process-wide default",
        DeprecationWarning,
        stacklevel=2,
    )
    global _TRANSPORT_DEFAULT
    if name not in TRANSPORTS:
        raise ValueError(f"Unknown transport {name!r}; expected one of {TRANSPORTS}")
    if address is not None:
        parse_address(address)  # validation only
    _TRANSPORT_DEFAULT = (name, address)


def transport_default() -> Tuple[str, Optional[str]]:
    """Return the current process-wide ``(transport, address)`` default."""
    return _TRANSPORT_DEFAULT

"""Execution backends for the per-worker phase of a global iteration.

The paper's algorithms are *embarrassingly parallel* across workers within
one global iteration: MD-GAN's Algorithm 1 steps 2-3 (``L`` discriminator
steps plus the error feedback) touch only worker-local state, and FL-GAN's
local epochs are independent between federated rounds.  The trainers in
``repro.core`` therefore split each iteration into three phases:

1. **build** (serial) — drain mailboxes and snapshot every participant's
   task as a self-contained, picklable value;
2. **compute** (parallel) — run the pure per-worker function over the tasks
   through an :class:`ExecutorBackend`;
3. **merge** (serial, worker-index order) — write results back into the
   trainer, absorb compute charges into the node ledgers and route messages
   through the simulated network.

Because phase 2 is side-effect free and phases 1/3 are serial and ordered,
every backend produces *bitwise identical* training trajectories: ``thread``
and ``process`` only change wall-clock time, never numerics.

Backends:

``serial``
    The default.  Runs tasks in a plain loop on the calling thread; zero
    overhead, reference behaviour.
``thread``
    A :class:`concurrent.futures.ThreadPoolExecutor`.  NumPy releases the
    GIL inside its kernels, so the conv/matmul-heavy worker steps overlap on
    multi-core hosts without any serialization cost.
``process``
    A :class:`concurrent.futures.ProcessPoolExecutor`.  Tasks and results
    round-trip through pickle, so worker state must be picklable (the
    ``repro`` stack is pure NumPy and is).  Highest isolation and true
    parallelism for pure-Python-bound workloads, at the price of IPC.
``resident``
    A persistent process pool that keeps each worker's state *resident* in
    its pool process across iterations (sticky worker->process affinity), so
    only per-iteration inputs and outputs cross the IPC boundary instead of
    the full pickled worker state.  See :mod:`repro.runtime.resident`.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

__all__ = [
    "BACKENDS",
    "ExecutorBackend",
    "PendingResult",
    "CompletedResult",
    "CompletionCollector",
    "EagerCollector",
    "FuturesCollector",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "create_backend",
    "register_backend",
    "default_max_workers",
    "close_quietly",
]


def close_quietly(backend: "ExecutorBackend") -> None:
    """Deprecated alias for :func:`repro.core.lifecycle.close_quietly`.

    The quiet-close now lives with the :class:`~repro.core.lifecycle.
    BackendOwner` lifecycle mixin, the one documented open/close contract
    shared by trainers, the serving layer and the experiment runners.  The
    body is duplicated here (rather than imported) because ``repro.runtime``
    must not import ``repro.core``.
    """
    import warnings

    warnings.warn(
        "repro.runtime.backend.close_quietly is deprecated; use "
        "repro.core.lifecycle.close_quietly (or own the backend through the "
        "BackendOwner mixin / a context manager)",
        DeprecationWarning,
        stacklevel=2,
    )
    try:
        backend.close()
    except Exception:
        pass

T = TypeVar("T")
R = TypeVar("R")

#: Names of the available execution backends, in documentation order.
BACKENDS = ("serial", "thread", "process", "resident")

#: Registry mapping backend name -> factory taking ``max_workers``.
_REGISTRY: Dict[str, Callable[[Optional[int]], "ExecutorBackend"]] = {}


def register_backend(name: str, factory: Callable[[Optional[int]], "ExecutorBackend"]) -> None:
    """Register a backend factory under ``name`` (used by :func:`create_backend`)."""
    _REGISTRY[name] = factory


def default_max_workers() -> int:
    """Default pool size: every core but one, at least one."""
    return max(1, (os.cpu_count() or 1) - 1)


class PendingResult:
    """Handle for an asynchronously dispatched ordered map.

    Returned by :meth:`ExecutorBackend.submit_ordered`; :meth:`result` blocks
    until every task has finished and returns the results **in task order**,
    exactly like :meth:`ExecutorBackend.map_ordered` would have.  The
    pipelined training mode (:mod:`repro.runtime.pipeline`) dispatches the
    per-worker phase through these handles so the server can keep computing
    while the workers run.
    """

    def result(self) -> List:
        """Block until every task has finished; return results in task order."""
        raise NotImplementedError

    @property
    def done(self) -> bool:
        """Whether :meth:`result` would return without blocking."""
        return False


class CompletedResult(PendingResult):
    """A :class:`PendingResult` whose values are already available.

    Used by backends without real asynchrony (``serial``; single-task fast
    paths): the work ran eagerly at submit time, so ``result`` just hands the
    stored values back.  Numerics are identical either way — only the overlap
    with the caller's own compute is lost.
    """

    def __init__(self, values: List) -> None:
        self._values = values

    def result(self) -> List:
        """Return the precomputed values (never blocks)."""
        return self._values

    @property
    def done(self) -> bool:
        """Always ``True`` — the work ran at submit time."""
        return True


class _FuturesResult(PendingResult):
    """Pending result backed by a list of ``concurrent.futures`` futures."""

    def __init__(self, futures: List) -> None:
        self._futures = futures

    def result(self) -> List:
        """Gather every future's result, in submission order."""
        return [future.result() for future in self._futures]

    @property
    def done(self) -> bool:
        """Whether every underlying future has completed."""
        return all(future.done() for future in self._futures)


class CompletionCollector(ABC):
    """As-completed collection over independently keyed tasks.

    The ordered-map contract (:meth:`ExecutorBackend.map_ordered` /
    :meth:`~ExecutorBackend.submit_ordered`) returns results **in task
    order**, which is what the synchronous trainers need for bitwise
    determinism — but it makes the caller wait for the slowest task before
    seeing any result.  A collector is the complementary contract for the
    asynchronous aggregation mode: tasks are dispatched one at a time under a
    caller-chosen key, and :meth:`collect_any` hands back *whichever* task
    finishes next.  Completion order is nondeterministic on concurrent
    backends by design; callers that need determinism keep using the ordered
    map.

    One collector models one in-flight set; trainers open one per training
    run and close it before any whole-pool operation (state mirror, swap)
    runs.
    """

    @abstractmethod
    def dispatch(self, key: int, fn: Callable, task) -> None:
        """Start one task under ``key``.

        ``fn(task)`` is the work for the stateless backends; the resident
        backend instead interprets ``fn`` as the state supplier and ``task``
        as the step payload (mirroring :meth:`ResidentBackend.start_steps`).
        A key may only have one task in flight at a time.
        """

    @abstractmethod
    def collect_any(self, timeout: Optional[float] = None) -> tuple:
        """Block until any outstanding task finishes; return ``(key, result)``.

        Raises ``TimeoutError`` if ``timeout`` (seconds) elapses first and
        ``RuntimeError`` if nothing is outstanding.  A task that raised
        re-raises here, after being removed from the outstanding set.
        """

    @property
    @abstractmethod
    def outstanding(self) -> int:
        """Number of dispatched tasks not yet returned by :meth:`collect_any`."""

    def __len__(self) -> int:
        return self.outstanding

    def drain(self) -> int:
        """Collect and discard every outstanding task; return the count."""
        discarded = 0
        while self.outstanding:
            self.collect_any()
            discarded += 1
        return discarded

    def close(self) -> None:
        """Drain any outstanding work and release the collector."""
        self.drain()


class EagerCollector(CompletionCollector):
    """Collector for inline backends: runs each task at dispatch time.

    Completion order degenerates to dispatch order (FIFO), which makes the
    asynchronous aggregation mode fully deterministic on the serial backend —
    the property the async regression tests pin.
    """

    def __init__(self) -> None:
        self._ready: List[tuple] = []

    def dispatch(self, key: int, fn: Callable, task) -> None:
        """Run ``fn(task)`` inline and queue the result for collection."""
        self._ready.append((key, fn(task)))

    def collect_any(self, timeout: Optional[float] = None) -> tuple:
        """Return the oldest dispatched ``(key, result)`` pair."""
        if not self._ready:
            raise RuntimeError("collect_any called with no outstanding tasks")
        return self._ready.pop(0)

    @property
    def outstanding(self) -> int:
        """Results queued but not yet collected."""
        return len(self._ready)


class FuturesCollector(CompletionCollector):
    """Collector backed by a ``concurrent.futures`` executor pool.

    ``collect_any`` waits with ``FIRST_COMPLETED`` semantics; when several
    futures are already done it returns the earliest-dispatched one, so
    backlogs drain in a stable order.
    """

    def __init__(self, pool) -> None:
        self._pool = pool
        self._in_flight: List[tuple] = []  # (key, future), dispatch order

    def dispatch(self, key: int, fn: Callable, task) -> None:
        """Submit ``fn(task)`` to the pool under ``key``."""
        self._in_flight.append((key, self._pool.submit(fn, task)))

    def collect_any(self, timeout: Optional[float] = None) -> tuple:
        """Return the next completed ``(key, result)``; earliest-dispatched first."""
        from concurrent.futures import FIRST_COMPLETED, wait

        if not self._in_flight:
            raise RuntimeError("collect_any called with no outstanding tasks")
        done, _ = wait([f for _, f in self._in_flight], timeout, FIRST_COMPLETED)
        if not done:
            raise TimeoutError(
                f"collect_any timed out after {timeout}s with "
                f"{len(self._in_flight)} task(s) outstanding"
            )
        index = next(i for i, (_, f) in enumerate(self._in_flight) if f in done)
        key, future = self._in_flight.pop(index)
        return key, future.result()

    @property
    def outstanding(self) -> int:
        """Futures dispatched but not yet collected."""
        return len(self._in_flight)


class ExecutorBackend(ABC):
    """Maps a pure function over independent per-worker tasks.

    The contract mirrors :func:`map`: results are returned **in task order**
    regardless of completion order, which is what lets the trainers merge
    worker results deterministically (worker-index order) and keep seeded
    runs bitwise identical across backends.
    """

    #: Human-readable backend name (one of :data:`BACKENDS`).
    name: str = "abstract"

    #: Whether :meth:`submit_ordered` runs tasks concurrently with the
    #: caller's own thread.  ``False`` means submit executes eagerly inline
    #: (identical numerics, no overlap) — the pipelined mode consults this
    #: to decide whether fan-out/overlap can actually pay off.
    concurrent: bool = False

    @abstractmethod
    def map_ordered(self, fn: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every task and return the results in task order."""

    def submit_ordered(self, fn: Callable[[T], R], tasks: Sequence[T]) -> PendingResult:
        """Dispatch ``fn`` over ``tasks`` and return a :class:`PendingResult`.

        ``handle.result()`` is equivalent to ``map_ordered(fn, tasks)``
        bitwise; concurrent backends overlap the work with the caller between
        submit and collect.  The default implementation runs eagerly inline.
        """
        return CompletedResult(self.map_ordered(fn, tasks))

    def open_collector(self, program: Optional[str] = None) -> CompletionCollector:
        """Open a :class:`CompletionCollector` over this backend.

        ``program`` names the resident program for the resident backend and
        is ignored by the stateless backends, so trainers can pass it
        unconditionally.  The default implementation runs tasks eagerly at
        dispatch time (completion order == dispatch order).
        """
        return EagerCollector()

    def close(self) -> None:
        """Release pooled resources; the backend may be reused afterwards."""

    def __enter__(self) -> "ExecutorBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{self.__class__.__name__}(name={self.name!r})"


class SerialBackend(ExecutorBackend):
    """Reference backend: run every task inline on the calling thread."""

    name = "serial"

    def map_ordered(self, fn: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
        """Run every task inline, in order."""
        return [fn(task) for task in tasks]


class _PooledBackend(ExecutorBackend):
    """Shared lifecycle for the pool-based backends (lazy pool, reusable)."""

    concurrent = True

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers or default_max_workers()
        self._pool = None

    def _make_pool(self):
        raise NotImplementedError

    @property
    def pool(self):
        """The underlying executor, created on first use."""
        if self._pool is None:
            self._pool = self._make_pool()
        return self._pool

    def map_ordered(self, fn: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
        """Map ``fn`` over the tasks through the pool, preserving task order."""
        if len(tasks) <= 1:
            # Nothing to overlap; skip pool dispatch (and, for the process
            # backend, one pickle round-trip of the task payload).
            return [fn(task) for task in tasks]
        return list(self.pool.map(fn, tasks))

    def submit_ordered(self, fn: Callable[[T], R], tasks: Sequence[T]) -> PendingResult:
        """Submit the tasks to the pool and return a non-blocking handle."""
        if len(tasks) <= 1:
            # Mirror map_ordered's fast path: a single task is run inline
            # (no pool dispatch, no pickle round-trip) — at the cost of not
            # overlapping with the caller, which one task rarely repays.
            return CompletedResult([fn(task) for task in tasks])
        return _FuturesResult([self.pool.submit(fn, task) for task in tasks])

    def open_collector(self, program: Optional[str] = None) -> CompletionCollector:
        """Open a pool-backed collector (true as-completed semantics)."""
        return FuturesCollector(self.pool)

    def close(self) -> None:
        """Shut the pool down; a later use lazily recreates it."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ThreadBackend(_PooledBackend):
    """Thread-pool backend; parallel where NumPy kernels release the GIL."""

    name = "thread"

    def _make_pool(self):
        from concurrent.futures import ThreadPoolExecutor

        return ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="repro-worker"
        )


class ProcessBackend(_PooledBackend):
    """Process-pool backend; tasks/results round-trip through pickle."""

    name = "process"

    def _make_pool(self):
        from concurrent.futures import ProcessPoolExecutor

        return ProcessPoolExecutor(max_workers=self.max_workers)


register_backend("serial", lambda max_workers=None: SerialBackend())
register_backend("thread", lambda max_workers=None: ThreadBackend(max_workers=max_workers))
register_backend("process", lambda max_workers=None: ProcessBackend(max_workers=max_workers))


def create_backend(
    name: str = "serial", max_workers: Optional[int] = None, **options
) -> ExecutorBackend:
    """Instantiate an execution backend by name (via the registry).

    ``max_workers`` bounds the pool size for ``thread``/``process``/
    ``resident`` (``None`` picks :func:`default_max_workers`); it is accepted
    and ignored for ``serial`` so call sites can thread the setting through
    unconditionally.  Extra keyword ``options`` are forwarded to the factory
    verbatim — the resident backend accepts ``transport=``/
    ``transport_address=`` (and the shm/timeout knobs) this way; a backend
    whose factory does not take an option rejects it with a ``TypeError``
    rather than silently dropping it.
    """
    factory = _REGISTRY.get(name)
    if factory is None and name in BACKENDS:
        # The resident backend registers itself on import; pull it in lazily
        # so importing this module alone stays cheap and cycle-free.
        from . import resident  # noqa: F401  (registration side effect)

        factory = _REGISTRY.get(name)
    if factory is None:
        raise ValueError(f"Unknown backend {name!r}; expected one of {BACKENDS}")
    return factory(max_workers, **options)

"""``repro.runtime`` — execution backends for the per-worker training phase.

Workers within one global iteration are independent by construction
(Algorithm 1 steps 2-3), so the trainers fan their per-worker work out
through an :class:`ExecutorBackend`: ``serial`` (reference), ``thread``
(NumPy kernels release the GIL), ``process`` (pickle round-trip, full
isolation) or ``resident`` (persistent pool holding worker state across
iterations; only per-iteration deltas cross the IPC boundary).  All backends
are bitwise-deterministic: results merge in worker-index order and the task
runners touch no shared state.

The resident pool's wire protocol is transport-agnostic
(:mod:`repro.runtime.transport`): ``transport="pipe"`` keeps the local
process pool, ``transport="tcp"`` serves the same protocol over sockets —
loopback, or real worker machines running
``python -m repro.runtime.worker_host --connect HOST:PORT``.
"""

from .backend import (
    BACKENDS,
    CompletedResult,
    CompletionCollector,
    EagerCollector,
    ExecutorBackend,
    FuturesCollector,
    PendingResult,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    close_quietly,
    create_backend,
    default_max_workers,
    register_backend,
)
from .pipeline import (
    BatchAheadQueue,
    GeneratorHandle,
    InflightWindow,
    PendingGeneration,
    PipelineStats,
    can_generate_resident,
    fan_out_generation,
    start_resident_generation,
)
from .membership import (
    LOST,
    ON_SLOT_LOSS_POLICIES,
    MembershipEvent,
    MembershipPolicy,
    PoolMembership,
    SlotLossError,
)
from .resident import (
    PendingSteps,
    ResidentBackend,
    ResidentCollector,
    ResidentProgram,
    get_program,
    register_program,
    serve_slot,
    set_shm_install_default,
    shm_install_default,
    stable_key_hash,
)
from .transport import (
    TRANSPORTS,
    ChaosAction,
    ChaosChannel,
    ChaosSchedule,
    ChaosTransport,
    HandshakeRefused,
    LocalPipeTransport,
    TcpTransport,
    Transport,
    TransportError,
    create_transport,
    register_transport,
    set_transport_default,
    transport_default,
)
from .tasks import (
    FLGANLocalResult,
    FLGANLocalTask,
    FLGANResidentState,
    FLGANStepResult,
    MDGANResidentState,
    MDGANStepInput,
    MDGANStepResult,
    MDGANWorkerResult,
    MDGANWorkerTask,
    run_flgan_local_task,
    run_flgan_resident_step,
    run_mdgan_resident_step,
    run_mdgan_worker_task,
)

__all__ = [
    "BACKENDS",
    "TRANSPORTS",
    "ExecutorBackend",
    "PendingResult",
    "CompletedResult",
    "CompletionCollector",
    "EagerCollector",
    "FuturesCollector",
    "ResidentCollector",
    "PendingSteps",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "ResidentBackend",
    "ResidentProgram",
    "BatchAheadQueue",
    "GeneratorHandle",
    "InflightWindow",
    "PipelineStats",
    "PendingGeneration",
    "fan_out_generation",
    "start_resident_generation",
    "can_generate_resident",
    "Transport",
    "TransportError",
    "HandshakeRefused",
    "LocalPipeTransport",
    "TcpTransport",
    "ChaosAction",
    "ChaosChannel",
    "ChaosSchedule",
    "ChaosTransport",
    "LOST",
    "ON_SLOT_LOSS_POLICIES",
    "MembershipEvent",
    "MembershipPolicy",
    "PoolMembership",
    "SlotLossError",
    "create_backend",
    "register_backend",
    "create_transport",
    "register_transport",
    "register_program",
    "get_program",
    "serve_slot",
    "default_max_workers",
    "close_quietly",
    "set_shm_install_default",
    "shm_install_default",
    "set_transport_default",
    "transport_default",
    "stable_key_hash",
    "MDGANWorkerTask",
    "MDGANWorkerResult",
    "MDGANResidentState",
    "MDGANStepInput",
    "MDGANStepResult",
    "FLGANLocalTask",
    "FLGANLocalResult",
    "FLGANResidentState",
    "FLGANStepResult",
    "run_mdgan_worker_task",
    "run_flgan_local_task",
    "run_mdgan_resident_step",
    "run_flgan_resident_step",
]

"""``repro.runtime`` — execution backends for the per-worker training phase.

Workers within one global iteration are independent by construction
(Algorithm 1 steps 2-3), so the trainers fan their per-worker work out
through an :class:`ExecutorBackend`: ``serial`` (reference), ``thread``
(NumPy kernels release the GIL), ``process`` (pickle round-trip, full
isolation) or ``resident`` (persistent pool holding worker state across
iterations; only per-iteration deltas cross the IPC boundary).  All backends
are bitwise-deterministic: results merge in worker-index order and the task
runners touch no shared state.
"""

from .backend import (
    BACKENDS,
    CompletedResult,
    ExecutorBackend,
    PendingResult,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    create_backend,
    default_max_workers,
    register_backend,
)
from .pipeline import (
    BatchAheadQueue,
    InflightWindow,
    PipelineStats,
    fan_out_generation,
)
from .resident import (
    PendingSteps,
    ResidentBackend,
    ResidentProgram,
    get_program,
    register_program,
)
from .tasks import (
    FLGANLocalResult,
    FLGANLocalTask,
    FLGANResidentState,
    FLGANStepResult,
    MDGANResidentState,
    MDGANStepInput,
    MDGANStepResult,
    MDGANWorkerResult,
    MDGANWorkerTask,
    run_flgan_local_task,
    run_flgan_resident_step,
    run_mdgan_resident_step,
    run_mdgan_worker_task,
)

__all__ = [
    "BACKENDS",
    "ExecutorBackend",
    "PendingResult",
    "CompletedResult",
    "PendingSteps",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "ResidentBackend",
    "ResidentProgram",
    "BatchAheadQueue",
    "InflightWindow",
    "PipelineStats",
    "fan_out_generation",
    "create_backend",
    "register_backend",
    "register_program",
    "get_program",
    "default_max_workers",
    "MDGANWorkerTask",
    "MDGANWorkerResult",
    "MDGANResidentState",
    "MDGANStepInput",
    "MDGANStepResult",
    "FLGANLocalTask",
    "FLGANLocalResult",
    "FLGANResidentState",
    "FLGANStepResult",
    "run_mdgan_worker_task",
    "run_flgan_local_task",
    "run_mdgan_resident_step",
    "run_flgan_resident_step",
]

"""``repro.runtime`` — execution backends for the per-worker training phase.

Workers within one global iteration are independent by construction
(Algorithm 1 steps 2-3), so the trainers fan their per-worker work out
through an :class:`ExecutorBackend`: ``serial`` (reference), ``thread``
(NumPy kernels release the GIL) or ``process`` (pickle round-trip, full
isolation).  All backends are bitwise-deterministic: results merge in
worker-index order and the task runners touch no shared state.
"""

from .backend import (
    BACKENDS,
    ExecutorBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    create_backend,
    default_max_workers,
)
from .tasks import (
    FLGANLocalResult,
    FLGANLocalTask,
    MDGANWorkerResult,
    MDGANWorkerTask,
    run_flgan_local_task,
    run_mdgan_worker_task,
)

__all__ = [
    "BACKENDS",
    "ExecutorBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "create_backend",
    "default_max_workers",
    "MDGANWorkerTask",
    "MDGANWorkerResult",
    "FLGANLocalTask",
    "FLGANLocalResult",
    "run_mdgan_worker_task",
    "run_flgan_local_task",
]

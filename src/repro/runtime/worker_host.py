"""Standalone worker host: run resident-pool slots on another machine.

The paper's MD-GAN deployment puts the discriminators on ``N`` worker hosts
driven by one parameter server; this entrypoint is the worker side of that
split.  Each invocation connects to a server whose resident backend is
listening with the ``tcp`` transport, completes the protocol handshake (and
is assigned a slot index by accept order), then serves the resident protocol
— install / step / pull / push / generate / mirror — until the server closes
the pool:

.. code-block:: console

    $ python -m repro.runtime.worker_host --connect 192.0.2.10:5555 --slots 4

``--slots N`` forks ``N`` serving processes from one command, one per pool
slot this host should own (slots are single-threaded by design — NumPy
parallelism lives inside the step kernels).  The process exits when the
server closes the connection.  Under the default fail-stop discipline a
lost slot poisons the pool and the trainer rebuilds; elastic pools
(``--on-slot-loss degrade|wait`` server-side) instead keep listening, so a
worker host started mid-run joins the pool as a *late joiner* through the
same handshake.  A server that refuses the handshake with a retriable
error (e.g. the pool has not reached a join boundary yet) is re-dialled
with ``--rejoin-backoff`` seconds between attempts until
``--connect-timeout`` expires.
"""

from __future__ import annotations

import argparse
import multiprocessing
import socket
import sys
import time
from typing import Optional, Sequence, Tuple

from .transport.tcp import HandshakeRefused, TcpChannel, client_handshake, parse_address

__all__ = ["run_worker", "serve_forever", "main"]

_RETRY_INTERVAL_S = 0.2


def _connect_with_retry(address: Tuple[str, int], timeout: float) -> socket.socket:
    """Connect to ``address``, retrying while nothing is listening yet.

    A refused connection means no listener exists, so retrying cannot
    disturb slot assignment (nothing entered the server's accept queue);
    it lets worker hosts start before the server reaches its listen call —
    the natural order when the server is a training run with setup work.
    """
    deadline = time.monotonic() + timeout
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise ConnectionRefusedError(
                f"no server listening on {address[0]}:{address[1]} "
                f"after {timeout:.0f}s"
            )
        try:
            return socket.create_connection(address, timeout=remaining)
        except ConnectionRefusedError:
            time.sleep(min(_RETRY_INTERVAL_S, max(0.0, deadline - time.monotonic())))


def run_worker(
    address: Tuple[str, int],
    connect_timeout: float = 30.0,
    read_timeout: Optional[float] = None,
    quiet: bool = True,
    rejoin_backoff: float = _RETRY_INTERVAL_S,
) -> dict:
    """Connect to ``address``, handshake, and serve one pool slot until close.

    Retries while the connection is refused (server not yet listening) up to
    ``connect_timeout`` seconds; a handshake the server refuses with
    ``retry=True`` (the elastic pool is up but not admitting at this instant)
    is re-dialled after ``rejoin_backoff`` seconds against the same deadline.
    Returns the handshake assignment (``slot_index``/``num_slots``/
    ``session``, plus ``epoch`` for late joiners) after the serving loop
    exits.  Used both by the CLI below and as the spawn target for
    :class:`~repro.runtime.transport.tcp.TcpTransport`'s loopback mode.
    """
    deadline = time.monotonic() + connect_timeout
    while True:
        remaining = max(deadline - time.monotonic(), 0.001)
        sock = _connect_with_retry(address, timeout=remaining)
        channel = TcpChannel(sock, read_timeout=read_timeout)
        try:
            assignment = client_handshake(channel)
            break
        except HandshakeRefused as exc:
            channel.close()
            if not exc.retry or time.monotonic() + rejoin_backoff >= deadline:
                raise
            if not quiet:
                print(
                    f"worker-host: server refused handshake ({exc}); retrying "
                    f"in {rejoin_backoff:.2f}s",
                    file=sys.stderr,
                    flush=True,
                )
            time.sleep(rejoin_backoff)
        except BaseException:
            channel.close()
            raise
    try:
        if not quiet:
            print(
                f"worker-host: serving slot {assignment['slot_index']} of "
                f"{assignment['num_slots']} (session {assignment['session']}) "
                f"for {address[0]}:{address[1]}",
                file=sys.stderr,
                flush=True,
            )
        # Lazy import: the protocol layer imports the transport package,
        # which spawns this module — importing at call time stays acyclic.
        from .resident import serve_slot

        serve_slot(channel)
    finally:
        channel.close()
    return assignment


def serve_forever(
    address: Tuple[str, int],
    connect_timeout: float = 30.0,
    read_timeout: Optional[float] = None,
    quiet: bool = False,
    rejoin_backoff: float = _RETRY_INTERVAL_S,
) -> int:
    """Serve one pool slot per successive pool until no server reappears.

    Experiment runners (``fig4``/``fig5``/``traffic-check``) build several
    trainers in sequence, each with its own pool; a single-shot worker exits
    when the first pool closes and the next one finds nobody listening.
    This loop reconnects after every clean close and exits 0 once no server
    shows up within ``connect_timeout`` — it serves successive *pools*,
    which is distinct from the fail-stop rule that a lost slot inside one
    pool is never replaced.
    """
    served = 0
    while True:
        try:
            run_worker(
                address,
                connect_timeout=connect_timeout,
                read_timeout=read_timeout,
                quiet=quiet,
                rejoin_backoff=rejoin_backoff,
            )
        except (ConnectionRefusedError, HandshakeRefused):
            if not quiet:
                print(
                    f"worker-host: no server on {address[0]}:{address[1]} "
                    f"within {connect_timeout:.0f}s after serving {served} "
                    f"pool(s); exiting",
                    file=sys.stderr,
                    flush=True,
                )
            return 0 if served else 1
        served += 1


def _serve_forever_process(
    address: Tuple[str, int],
    connect_timeout: float = 30.0,
    quiet: bool = False,
    rejoin_backoff: float = _RETRY_INTERVAL_S,
) -> None:
    """Process target: propagate :func:`serve_forever`'s code as the exitcode."""
    sys.exit(
        serve_forever(
            address,
            connect_timeout=connect_timeout,
            quiet=quiet,
            rejoin_backoff=rejoin_backoff,
        )
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entrypoint: ``python -m repro.runtime.worker_host --connect HOST:PORT``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.worker_host",
        description="Serve resident-pool slots for a remote MD-GAN/FL-GAN server.",
    )
    parser.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="address the server's tcp transport is listening on",
    )
    parser.add_argument(
        "--slots",
        type=int,
        default=1,
        help="number of pool slots to serve from this host (default 1)",
    )
    parser.add_argument(
        "--connect-timeout",
        type=float,
        default=30.0,
        help="seconds to wait for the server to accept (default 30)",
    )
    parser.add_argument(
        "--loop",
        action="store_true",
        help=(
            "keep serving successive pools (multi-run servers like fig5 build "
            "one pool per training run); exits 0 once no server reappears "
            "within --connect-timeout"
        ),
    )
    parser.add_argument(
        "--rejoin-backoff",
        type=float,
        default=_RETRY_INTERVAL_S,
        help=(
            "seconds between handshake re-dials when an elastic server refuses "
            f"with a retriable error (default {_RETRY_INTERVAL_S})"
        ),
    )
    args = parser.parse_args(argv)
    if args.slots < 1:
        parser.error(f"--slots must be >= 1, got {args.slots}")
    if args.rejoin_backoff <= 0:
        parser.error(f"--rejoin-backoff must be > 0, got {args.rejoin_backoff}")
    address = parse_address(args.connect)
    if args.slots == 1:
        if args.loop:
            return serve_forever(
                address,
                connect_timeout=args.connect_timeout,
                rejoin_backoff=args.rejoin_backoff,
            )
        try:
            run_worker(
                address,
                connect_timeout=args.connect_timeout,
                quiet=False,
                rejoin_backoff=args.rejoin_backoff,
            )
        except (ConnectionRefusedError, HandshakeRefused) as exc:
            print(f"worker-host: {exc}", file=sys.stderr, flush=True)
            return 1
        return 0
    ctx = multiprocessing.get_context()
    processes = [
        ctx.Process(
            target=_serve_forever_process if args.loop else run_worker,
            args=(address,),
            kwargs={
                "connect_timeout": args.connect_timeout,
                "quiet": False,
                "rejoin_backoff": args.rejoin_backoff,
            },
        )
        for _ in range(args.slots)
    ]
    for process in processes:
        process.start()
    exit_code = 0
    for process in processes:
        process.join()
        exit_code = exit_code or (process.exitcode or 0)
    return exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    sys.exit(main())

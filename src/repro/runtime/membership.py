"""Elastic pool membership: policies, state and events for slot churn.

The resident pool (:mod:`repro.runtime.resident`) is fail-stop by default —
any wire fault poisons the whole pool.  This module holds everything the
*elastic* alternative needs:

* :class:`MembershipPolicy` — the degradation policy threaded through
  ``TrainingConfig``: what to do when a slot dies (``on_slot_loss``), how far
  the pool may shrink (``min_workers``) and how eagerly lost capacity is
  re-sought (``rejoin_backoff`` / ``rejoin_timeout``).
* :class:`PoolMembership` — mutable membership state shared between the
  backend (which quarantines dead slots and remaps keys) and the trainer
  (which evicts/revives workers and rebalances shards): quarantined slots,
  the key→slot assignment overlay, boundary mirrors, pending losses and the
  event/counter log surfaced through ``TrainingHistory`` and the meters.
* :class:`SlotLossError` — the *recoverable* sibling of
  :class:`~repro.runtime.transport.TransportError`: raised instead of
  poisoning when a slot dies under an elastic policy, carrying the worker
  keys whose resident state died with the slot.
* :data:`LOST` — sentinel standing in for the result of a step whose slot
  died before replying; the trainers treat it exactly like a crash (the
  un-merged contribution is discarded).

The fail-stop default runs **zero** code from this module: a backend without
an elastic policy never constructs a :class:`PoolMembership`, keeping
``on_slot_loss="fail_stop"`` bitwise-identical to the pre-membership pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from .transport import TransportError

__all__ = [
    "ON_SLOT_LOSS_POLICIES",
    "LOST",
    "MembershipPolicy",
    "MembershipEvent",
    "PoolMembership",
    "SlotLossError",
]

#: Valid ``on_slot_loss`` policy names, in documentation order.
ON_SLOT_LOSS_POLICIES = ("fail_stop", "degrade", "wait")


class _Lost:
    """Singleton sentinel for a step result lost with its slot."""

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return "<LOST>"


#: The result of a dispatched step whose slot died before replying.  Trainers
#: treat it like a crash: the contribution is discarded un-merged.
LOST = _Lost()


class SlotLossError(TransportError):
    """A slot died under an elastic policy; the pool itself survives.

    Unlike a plain :class:`TransportError` (which means the pool was
    poisoned), the backend has already quarantined the dead slot and remains
    usable — the caller is expected to hand the lost worker keys to the
    trainer's recovery path instead of tearing everything down.
    """

    def __init__(
        self,
        message: str,
        slot_index: Optional[int] = None,
        op: Optional[str] = None,
        lost_keys: Optional[List[Any]] = None,
    ) -> None:
        super().__init__(message, slot_index=slot_index, op=op)
        #: Worker keys whose resident state lived on the dead slot.
        self.lost_keys = list(lost_keys or ())


@dataclass(frozen=True)
class MembershipPolicy:
    """Degradation policy for slot loss, threaded through ``TrainingConfig``.

    ``on_slot_loss`` selects what happens when a pool slot dies mid-run:

    * ``"fail_stop"`` — today's behavior: poison the pool, raise
      :class:`~repro.runtime.transport.TransportError`.  Bitwise-identical to
      the pre-membership runtime (no elastic code runs at all).
    * ``"degrade"`` — quarantine the slot and **evict** its workers like
      crashes (un-merged contributions discarded); their shards are
      redistributed across survivors at the next aggregation boundary.  A
      late joiner revives evicted workers from their last merged mirror.
    * ``"wait"`` — quarantine the slot but keep its workers: block (with
      ``rejoin_backoff``-spaced reconnect attempts, up to
      ``rejoin_timeout``) for replacement capacity, then **reassign** the
      lost workers onto surviving/replacement slots, reinstalled from their
      last merged mirror.
    """

    on_slot_loss: str = "fail_stop"
    #: Fail the run if fewer than this many workers remain alive.
    min_workers: int = 1
    #: Seconds between reconnect/respawn attempts while healing the pool.
    rejoin_backoff: float = 0.25
    #: Max seconds the ``"wait"`` policy blocks for replacement capacity.
    rejoin_timeout: float = 10.0

    def __post_init__(self) -> None:
        """Validate the policy fields."""
        if self.on_slot_loss not in ON_SLOT_LOSS_POLICIES:
            raise ValueError(
                f"on_slot_loss must be one of {ON_SLOT_LOSS_POLICIES}, "
                f"got {self.on_slot_loss!r}"
            )
        if self.min_workers < 1:
            raise ValueError(f"min_workers must be >= 1, got {self.min_workers}")
        if self.rejoin_backoff <= 0:
            raise ValueError(f"rejoin_backoff must be > 0, got {self.rejoin_backoff}")
        if self.rejoin_timeout <= 0:
            raise ValueError(f"rejoin_timeout must be > 0, got {self.rejoin_timeout}")

    @property
    def elastic(self) -> bool:
        """Whether slot loss is survivable (anything but ``fail_stop``)."""
        return self.on_slot_loss != "fail_stop"


@dataclass
class MembershipEvent:
    """One membership transition, mirrored into ``TrainingHistory``."""

    #: Event kind: ``slot_loss``, ``join``, ``evict``, ``reassign``,
    #: ``revive``, ``rebalance`` or ``reconnect_attempt``.
    kind: str
    #: Pool slot index involved (``None`` when not slot-specific).
    slot: Optional[int] = None
    #: Worker key involved (``None`` when not worker-specific).
    worker: Optional[Any] = None
    #: Free-form context (failure reason, source slot, ...).
    detail: str = ""


@dataclass
class PoolMembership:
    """Mutable membership state shared by the backend and the trainer.

    The backend side mutates :attr:`quarantined` / :attr:`assignments` /
    :attr:`pending_loss` when a wire fault is survivable; the trainer side
    consumes :attr:`pending_loss`, maintains :attr:`evicted` /
    :attr:`mirrors` and drives shard rebalancing.  Everything observable
    funnels through :meth:`record`, which feeds both the event list (surfaced
    in ``TrainingHistory``) and the counters (surfaced next to the transport
    meters).
    """

    policy: MembershipPolicy
    #: Slot indices removed from service (their channels are closed).
    quarantined: Set[int] = field(default_factory=set)
    #: Key -> slot overlay on the hash placement; entries are only added for
    #: elastic pools and never move while their slot stays alive (resident
    #: state cannot migrate without a reinstall).
    assignments: Dict[Any, int] = field(default_factory=dict)
    #: Worker keys whose resident state died with a slot, not yet handled by
    #: the trainer's recovery path.
    pending_loss: Set[Any] = field(default_factory=set)
    #: Worker keys currently evicted by the ``degrade`` policy (revivable).
    evicted: Set[Any] = field(default_factory=set)
    #: Last merged mirror payload per worker key (refreshed at aggregation
    #: boundaries; what a reassigned/revived worker restarts from).
    mirrors: Dict[Any, Any] = field(default_factory=dict)
    #: Ordered log of membership transitions.
    events: List[MembershipEvent] = field(default_factory=list)
    #: Event counts by kind (``slot_loss``, ``join``, ``evict``, ...).
    counters: Dict[str, int] = field(default_factory=dict)

    def record(
        self,
        kind: str,
        slot: Optional[int] = None,
        worker: Optional[Any] = None,
        detail: str = "",
    ) -> MembershipEvent:
        """Append one membership event and bump its counter."""
        event = MembershipEvent(kind=kind, slot=slot, worker=worker, detail=detail)
        self.events.append(event)
        self.counters[kind] = self.counters.get(kind, 0) + 1
        return event

    def take_pending_loss(self) -> List[Any]:
        """Hand the un-handled lost worker keys to the trainer (sorted, cleared)."""
        lost = sorted(self.pending_loss, key=repr)
        self.pending_loss.clear()
        return lost

    def counters_snapshot(self) -> Dict[str, int]:
        """Copy of the event counters (for meters/artifacts)."""
        return dict(self.counters)

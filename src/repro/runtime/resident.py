"""Resident-worker process pool: worker state lives in the pool (delta shipping).

The ``process`` backend re-pickles each worker's *entire* state — model(s),
optimizer moments, sampler (including the dataset shard) and RNG — on every
global iteration, in both directions.  IPC cost therefore grows with model
*and shard* size and swamps the parallel speedup the paper's embarrassingly
parallel per-worker phase should deliver.

The ``resident`` backend fixes that by making worker state **resident**: each
pool process holds the full state of the workers assigned to it (sticky
``worker index -> slot`` affinity, ``slot = index mod pool size``) across
iterations, so the trainer ships only the per-iteration *inputs* (generated
batches for MD-GAN, nothing at all for FL-GAN local epochs) and receives only
the per-iteration *outputs* (losses, error feedback, compute tapes and the
RNG/sampler cursors that keep the trainer's accounting exact).

Because trainers sometimes mutate worker state outside the pool (the SWAP
gossip, FedAvg broadcasts, crash handling, ``replace_dataset``), the protocol
carries an explicit **state-epoch counter** per worker:

* while a worker's resident copy is current, the pool is authoritative and
  the trainer's local objects are stale;
* boundary mutations that touch only model parameters go through
  :meth:`ResidentBackend.pull_params` / :meth:`ResidentBackend.push_params`,
  which read/write flat parameter vectors in place without ever shipping the
  sampler or optimizer state;
* any other mutation must first *reclaim* authority with
  :meth:`ResidentBackend.pull_state`, which returns the full state, drops the
  resident copy and bumps the worker's epoch.  The next ``run_steps`` call
  detects the epoch mismatch and re-installs fresh state from the trainer.

Pool processes double-check the epoch of every step they execute and fail
loudly on a mismatch, so any state handed through the protocol can never be
silently trained on while stale.  (Mutations the protocol is never told
about — e.g. editing a worker's sampler without first reclaiming it via
``pull_state``/``sync_worker_state`` — are outside its reach: announce them,
as the trainer docs require.)  All numerics are bitwise identical to the
``serial`` reference: the
pool runs the exact same step functions on state that round-tripped through
pickle (which preserves float bits and object-graph sharing), and results
merge in worker-index order exactly like every other backend.

The backend also meters its own IPC: :attr:`ResidentBackend.ipc_bytes_sent`
and :attr:`ResidentBackend.ipc_bytes_received` count the pickled bytes that
actually crossed the pipes, which is what the resident-vs-process benchmark
(``benchmarks/test_resident_backend.py``) reports.
"""

from __future__ import annotations

import multiprocessing
import pickle
import traceback
from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .backend import ExecutorBackend, default_max_workers, register_backend

__all__ = [
    "ResidentBackend",
    "ResidentProgram",
    "PendingSteps",
    "register_program",
    "get_program",
]


# -- worker programs ---------------------------------------------------------------


@dataclass(frozen=True)
class ResidentProgram:
    """Named behaviour executed inside pool processes for one trainer family.

    ``step`` mutates the resident state in place and returns the light-weight
    per-iteration result; ``pull_params``/``push_params`` read/write the flat
    parameter vectors exchanged at swap/round boundaries without disturbing
    the rest of the resident state.
    """

    name: str
    step: Callable[[Any, Any], Any]
    pull_params: Callable[[Any], Any]
    push_params: Callable[[Any, Any], None]


_PROGRAMS: Dict[str, ResidentProgram] = {}


def register_program(program: ResidentProgram) -> ResidentProgram:
    """Register a :class:`ResidentProgram` under its name (idempotent)."""
    _PROGRAMS[program.name] = program
    return program


def get_program(name: str) -> ResidentProgram:
    """Look up a registered program, importing the built-ins if needed."""
    if name not in _PROGRAMS:
        # The built-in MD-GAN / FL-GAN programs register themselves when
        # repro.runtime.tasks is imported; a freshly spawned pool process may
        # not have imported it yet.
        from . import tasks  # noqa: F401  (registration side effect)
    try:
        return _PROGRAMS[name]
    except KeyError:
        raise ValueError(
            f"Unknown resident program {name!r}; registered: {sorted(_PROGRAMS)}"
        ) from None


# -- pool process main loop --------------------------------------------------------


def _slot_main(conn) -> None:
    """Serve resident-state requests on ``conn`` until EOF or ``close``.

    Residents are stored as ``key -> [program_name, epoch, state]``.  Every
    reply is ``("ok", payload)`` or ``("err", traceback_text)``; the parent
    re-raises errors, so a failure in worker code surfaces in the trainer
    with the child traceback attached.
    """
    residents: Dict[Any, list] = {}
    while True:
        try:
            raw = conn.recv_bytes()
        except (EOFError, OSError):
            break
        op, payload = pickle.loads(raw)
        if op == "close":
            break
        try:
            if op == "run":
                out = []
                for key, program_name, epoch, install, step_payload in payload:
                    if install is not None:
                        residents[key] = [program_name, epoch, install]
                    entry = residents.get(key)
                    if entry is None:
                        raise RuntimeError(
                            f"no resident state for worker {key!r} and no "
                            "install payload shipped"
                        )
                    if entry[1] != epoch:
                        raise RuntimeError(
                            f"stale resident state for worker {key!r}: resident "
                            f"epoch {entry[1]}, trainer epoch {epoch} (state was "
                            "mutated outside the pool without re-install)"
                        )
                    out.append(get_program(entry[0]).step(entry[2], step_payload))
                reply = ("ok", out)
            elif op == "pull_params":
                out = {}
                for key in payload:
                    entry = residents[key]
                    out[key] = get_program(entry[0]).pull_params(entry[2])
                reply = ("ok", out)
            elif op == "push_params":
                for key, params in payload.items():
                    entry = residents[key]
                    get_program(entry[0]).push_params(entry[2], params)
                reply = ("ok", None)
            elif op == "pull_state":
                keys, drop = payload
                reply = ("ok", {key: residents[key][2] for key in keys})
                if drop:
                    for key in keys:
                        residents.pop(key, None)
            else:
                raise RuntimeError(f"unknown resident-pool op {op!r}")
        except BaseException:
            reply = ("err", traceback.format_exc())
        try:
            conn.send_bytes(pickle.dumps(reply, protocol=pickle.HIGHEST_PROTOCOL))
        except (BrokenPipeError, OSError):
            break


# -- trainer-side backend ----------------------------------------------------------


class PendingSteps:
    """In-flight resident step batch; ``result()`` collects the slot replies.

    Returned by :meth:`ResidentBackend.start_steps`.  The request bytes were
    already written to the slot pipes at submit time, so the pool processes
    compute while the trainer does other work; ``result`` performs only the
    receives.  Because slot pipes are FIFO, handles **must be collected in
    dispatch order** — the backend enforces this and raises otherwise.
    """

    def __init__(self, backend: "ResidentBackend", per_slot, size: int) -> None:
        self._backend = backend
        self._per_slot = per_slot
        self._size = size
        self._values: Optional[List[Any]] = None
        #: Set when the pool died/closed before the replies were read.
        self._dead = False

    @property
    def done(self) -> bool:
        """Whether the replies were already collected."""
        return self._values is not None

    def result(self) -> List[Any]:
        """Collect the slot replies (in dispatch order) and return the results."""
        if self._values is None:
            self._values = self._backend._collect_steps(self)
        return self._values


class ResidentBackend(ExecutorBackend):
    """Persistent process pool with resident per-worker state.

    The generic :meth:`map_ordered` contract is honoured (inline, serial) so
    the backend is a drop-in ``ExecutorBackend``; trainers that recognise
    :attr:`supports_resident` use the richer protocol below instead.
    """

    name = "resident"
    #: Capability flag the trainers in :mod:`repro.core` dispatch on
    #: (``getattr(backend, "supports_resident", False)``); a third-party
    #: backend that implements this class's protocol methods can set it to
    #: opt into the resident code paths.
    supports_resident = True

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers or default_max_workers()
        self._slots: Optional[List[tuple]] = None
        #: Trainer-side truth: current state epoch per worker key.
        self._epochs: Dict[Any, int] = {}
        #: Epoch of the copy installed in the pool, per worker key.
        self._installed: Dict[Any, int] = {}
        #: Set when a pool operation failed; the resident state is then lost
        #: and every later protocol call refuses to run (fail-stop).
        self._broken_reason: Optional[str] = None
        #: Pickled bytes shipped to / received from the pool (IPC meter).
        self.ipc_bytes_sent = 0
        self.ipc_bytes_received = 0
        #: Dispatched-but-uncollected :class:`PendingSteps`, in dispatch
        #: order.  Slot pipes are FIFO, so replies must be read in this
        #: order; boundary ops (pull/push) refuse to run while it is
        #: non-empty.
        self._pending: List[PendingSteps] = []

    # -- generic ExecutorBackend duty ------------------------------------------
    def map_ordered(self, fn, tasks):
        """Inline fallback for callers that use the stateless map contract."""
        return [fn(task) for task in tasks]

    # -- pool lifecycle ---------------------------------------------------------
    def _ensure_slots(self) -> List[tuple]:
        if self._slots is None:
            ctx = multiprocessing.get_context()
            slots = []
            for _ in range(self.max_workers):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                process = ctx.Process(target=_slot_main, args=(child_conn,), daemon=True)
                process.start()
                child_conn.close()
                slots.append((process, parent_conn))
            self._slots = slots
        return self._slots

    def _poison(self, reason: str) -> None:
        """Fail-stop after a pool error: discard the pool and refuse to go on.

        A failed or half-executed request leaves resident state (and, with
        multiple in-flight slot replies, the request/reply pipes) in an
        unknown condition; some residents may hold steps the trainer never
        merged.  Continuing — or re-installing from the trainer's stale
        copies — would silently diverge from the serial reference, so the
        backend tears the pool down and every later protocol call raises.
        """
        self._broken_reason = reason
        self.close()

    def _check_usable(self) -> None:
        if self._broken_reason is not None:
            raise RuntimeError(
                "resident pool previously failed and its worker state was lost; "
                "rebuild the trainer/backend to continue. Original failure:\n"
                f"{self._broken_reason}"
            )

    def close(self) -> None:
        """Shut the pool down; resident state is discarded (trainer re-installs)."""
        # Any uncollected steps die with the pool; their handles would read
        # from closed pipes, so mark them dead (``result()`` then raises).
        for handle in self._pending:
            handle._dead = True
        self._pending.clear()
        if self._slots is not None:
            for _, conn in self._slots:
                try:
                    conn.send_bytes(pickle.dumps(("close", None), protocol=pickle.HIGHEST_PROTOCOL))
                except (BrokenPipeError, OSError):
                    pass
            for process, conn in self._slots:
                process.join(timeout=5)
                if process.is_alive():  # pragma: no cover - defensive cleanup
                    process.terminate()
                    process.join(timeout=5)
                conn.close()
            self._slots = None
        self._installed.clear()

    # -- wire helpers -----------------------------------------------------------
    def _slot_for(self, key) -> int:
        return hash(key) % len(self._ensure_slots())

    def _send(self, slot_index: int, message: tuple) -> None:
        _, conn = self._ensure_slots()[slot_index]
        data = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        self.ipc_bytes_sent += len(data)
        try:
            conn.send_bytes(data)
        except (BrokenPipeError, OSError) as exc:  # pragma: no cover - pool death
            self._poison(f"pipe to pool slot {slot_index} broke while sending")
            raise RuntimeError(f"resident pool slot {slot_index} is gone") from exc

    def _recv(self, slot_index: int):
        _, conn = self._ensure_slots()[slot_index]
        try:
            data = conn.recv_bytes()
        except EOFError as exc:  # pragma: no cover - pool death
            self._poison(f"pool slot {slot_index} died mid-request")
            raise RuntimeError(f"resident pool slot {slot_index} died") from exc
        self.ipc_bytes_received += len(data)
        status, payload = pickle.loads(data)
        if status != "ok":
            # The slot may have executed part of a batch before failing, and
            # other slots may still have unread replies in flight: both leave
            # state/pipes inconsistent, so fail stop rather than desync.
            self._poison(payload)
            raise RuntimeError(f"resident worker program failed:\n{payload}")
        return payload

    def _grouped(self, keys: Iterable) -> Dict[int, List]:
        grouped: Dict[int, List] = defaultdict(list)
        for key in keys:
            grouped[self._slot_for(key)].append(key)
        return grouped

    def _require_installed(self, keys: Iterable, op: str) -> None:
        missing = [key for key in keys if not self.installed(key)]
        if missing:
            raise ValueError(f"{op} requires installed resident state; missing for {missing}")

    def _require_no_inflight(self, op: str) -> None:
        if self._pending:
            raise RuntimeError(
                f"{op} cannot run while {len(self._pending)} step batch(es) are "
                "in flight; collect the PendingSteps handles (or call "
                "drain_inflight()) first"
            )

    # -- invalidation protocol --------------------------------------------------
    def installed(self, key) -> bool:
        """Whether the pool holds a *current* resident copy for ``key``."""
        return self._installed.get(key, -1) == self._epochs.get(key, 0)

    def invalidate(self, key) -> None:
        """Mark trainer-side state authoritative for ``key``.

        Bumps the state epoch, so the next :meth:`run_steps` ships a fresh
        install and any lingering pool copy is rejected as stale.
        """
        self._epochs[key] = self._epochs.get(key, 0) + 1

    # -- resident protocol ------------------------------------------------------
    def start_steps(
        self,
        program: str,
        items: Sequence[Tuple[Any, Callable[[], Any], Any]],
    ) -> PendingSteps:
        """Dispatch one per-iteration step per ``(key, state_supplier, payload)``.

        The request is written to the slot pipes immediately and a
        :class:`PendingSteps` handle is returned; the pool computes while the
        trainer does other work, and ``handle.result()`` collects the replies
        (in item order).  Multiple batches may be in flight at once — slots
        execute them FIFO — but handles must be collected in dispatch order,
        and boundary ops (pull/push/pull_state) are refused while any step is
        uncollected.

        ``state_supplier`` is invoked (trainer-side, at dispatch) only when
        the pool holds no current copy for ``key`` — first participation,
        after an invalidation, or after a pool restart — and its return value
        is shipped as the install payload.  The install is recorded at send
        time, so a later dispatch in the same flight window does not re-ship
        (and thereby clobber) resident state with the trainer's stale copy.
        """
        if not items:
            return PendingSteps(self, {}, 0)
        self._check_usable()
        per_slot: Dict[int, List[Tuple[int, tuple]]] = defaultdict(list)
        for position, (key, state_supplier, payload) in enumerate(items):
            epoch = self._epochs.setdefault(key, 0)
            install = None
            if self._installed.get(key) != epoch:
                install = state_supplier()
            wire = (key, program, epoch, install, payload)
            per_slot[self._slot_for(key)].append((position, wire))
        for slot_index, entries in per_slot.items():
            self._send(slot_index, ("run", [wire for _, wire in entries]))
            for _, (key, _, epoch, _, _) in entries:
                self._installed[key] = epoch
        handle = PendingSteps(self, dict(per_slot), len(items))
        self._pending.append(handle)
        return handle

    def _collect_steps(self, handle: PendingSteps) -> List[Any]:
        """Receive the slot replies for ``handle`` (dispatch order enforced)."""
        if handle._dead:
            raise RuntimeError(
                "resident pool was closed or poisoned before these steps were "
                "collected; their results are lost"
            )
        if not handle._per_slot:
            return []
        self._check_usable()
        if not self._pending or self._pending[0] is not handle:
            raise RuntimeError(
                "resident step handles must be collected in dispatch order "
                "(slot pipes are FIFO)"
            )
        results: List[Any] = [None] * handle._size
        for slot_index, entries in handle._per_slot.items():
            out = self._recv(slot_index)
            for (position, _), result in zip(entries, out):
                results[position] = result
        self._pending.pop(0)
        return results

    def run_steps(
        self,
        program: str,
        items: Sequence[Tuple[Any, Callable[[], Any], Any]],
    ) -> List[Any]:
        """Run one per-iteration step for every ``(key, state_supplier, payload)``.

        Synchronous convenience over :meth:`start_steps` — dispatch and
        collect in one call.  Results come back in item order; the per-worker
        work itself runs concurrently across pool slots.
        """
        return self.start_steps(program, items).result()

    def drain_inflight(self) -> int:
        """Collect and discard any uncollected step replies; return the count.

        Exception-path safety valve used before boundary ops: the steps *did*
        execute in the pool (resident state reflects them), only their
        results are dropped, so a subsequent :meth:`pull_state` observes
        consistent post-step state.  On the normal training path the trainers
        always collect every handle, making this a no-op.
        """
        drained = 0
        while self._pending:
            handle = self._pending[0]
            handle.result()
            drained += 1
        return drained

    def pull_params(self, keys: Sequence) -> Dict[Any, Any]:
        """Fetch flat parameter vectors from installed residents (state stays put)."""
        keys = list(keys)
        if not keys:
            return {}
        self._check_usable()
        self._require_no_inflight("pull_params")
        self._require_installed(keys, "pull_params")
        grouped = self._grouped(keys)
        for slot_index, slot_keys in grouped.items():
            self._send(slot_index, ("pull_params", slot_keys))
        merged: Dict[Any, Any] = {}
        for slot_index in grouped:
            merged.update(self._recv(slot_index))
        return merged

    def push_params(self, params_by_key: Dict[Any, Any]) -> None:
        """Write flat parameter vectors into installed residents in place."""
        if not params_by_key:
            return
        self._check_usable()
        self._require_no_inflight("push_params")
        self._require_installed(params_by_key, "push_params")
        grouped = self._grouped(params_by_key)
        for slot_index, slot_keys in grouped.items():
            self._send(slot_index, ("push_params", {key: params_by_key[key] for key in slot_keys}))
        for slot_index in grouped:
            self._recv(slot_index)

    def pull_state(self, keys: Sequence, drop: bool = True) -> Dict[Any, Any]:
        """Reclaim full resident state for ``keys`` (trainer becomes authoritative).

        With ``drop`` (the default) the pool forgets the residents and the
        epoch is bumped, so stale copies can never be stepped again; the next
        participation re-installs from the trainer's (now current) objects.
        """
        keys = list(keys)
        if not keys:
            return {}
        self._check_usable()
        self._require_no_inflight("pull_state")
        self._require_installed(keys, "pull_state")
        grouped = self._grouped(keys)
        for slot_index, slot_keys in grouped.items():
            self._send(slot_index, ("pull_state", (slot_keys, drop)))
        merged: Dict[Any, Any] = {}
        for slot_index in grouped:
            merged.update(self._recv(slot_index))
        if drop:
            for key in keys:
                self._installed.pop(key, None)
                self.invalidate(key)
        return merged

    def pull_into(
        self, holders: Sequence, fields: Sequence[str], key_attr: str = "index"
    ) -> None:
        """Reclaim resident state and copy ``fields`` onto the holder objects.

        Convenience over :meth:`pull_state` shared by the trainers'
        ``sync_worker_state``: holders whose key is not installed are left
        untouched; for the rest, every named field is copied from the pulled
        state object onto the holder (both sides use the same field names).

        Unlike the raw boundary ops this method first drains any in-flight
        step batches (discarding their results): it is what the trainers call
        from their ``finally`` blocks, where an exception may have left
        pipelined steps uncollected, and the pulled state must reflect the
        steps the pool actually executed.
        """
        if self._broken_reason is None:
            self.drain_inflight()
        keys = [
            getattr(holder, key_attr)
            for holder in holders
            if self.installed(getattr(holder, key_attr))
        ]
        if not keys:
            return
        states = self.pull_state(keys, drop=True)
        for holder in holders:
            state = states.get(getattr(holder, key_attr))
            if state is None:
                continue
            for field in fields:
                setattr(holder, field, getattr(state, field))


register_backend("resident", lambda max_workers=None: ResidentBackend(max_workers))

"""Resident-worker process pool: worker state lives in the pool (delta shipping).

The ``process`` backend re-pickles each worker's *entire* state — model(s),
optimizer moments, sampler (including the dataset shard) and RNG — on every
global iteration, in both directions.  IPC cost therefore grows with model
*and shard* size and swamps the parallel speedup the paper's embarrassingly
parallel per-worker phase should deliver.

The ``resident`` backend fixes that by making worker state **resident**: each
pool process holds the full state of the workers assigned to it (sticky
``worker index -> slot`` affinity via :func:`stable_key_hash`, so the
assignment is reproducible across interpreter runs) across iterations, so the
trainer ships only the per-iteration *inputs* (generated batches for MD-GAN,
nothing at all for FL-GAN local epochs) and receives only the per-iteration
*outputs* (losses, error feedback, compute tapes and the RNG/sampler cursors
that keep the trainer's accounting exact).

Because trainers sometimes mutate worker state outside the pool (the SWAP
gossip, FedAvg broadcasts, crash handling, ``replace_dataset``), the protocol
carries an explicit **state-epoch counter** per worker:

* while a worker's resident copy is current, the pool is authoritative and
  the trainer's local objects are stale;
* boundary mutations that touch only model parameters go through
  :meth:`ResidentBackend.pull_params` / :meth:`ResidentBackend.push_params`,
  which read/write flat parameter vectors in place without ever shipping the
  sampler or optimizer state;
* any other mutation must first *reclaim* authority with
  :meth:`ResidentBackend.pull_state`, which returns the full state, drops the
  resident copy and bumps the worker's epoch.  The next ``run_steps`` call
  detects the epoch mismatch and re-installs fresh state from the trainer.

Pool processes double-check the epoch of every step they execute and fail
loudly on a mismatch, so any state handed through the protocol can never be
silently trained on while stale.  (Mutations the protocol is never told
about — e.g. editing a worker's sampler without first reclaiming it via
``pull_state``/``sync_worker_state`` — are outside its reach: announce them,
as the trainer docs require.)  All numerics are bitwise identical to the
``serial`` reference: the
pool runs the exact same step functions on state that round-tripped through
pickle (which preserves float bits and object-graph sharing), and results
merge in worker-index order exactly like every other backend.

Beyond per-worker steps the pool also serves two protocol extensions:

* **Resident-side generation** (:meth:`ResidentBackend.start_generation`) —
  slots hold a copy of the *server's* generator and run per-batch forward
  passes on shipped inputs, returning images plus the per-batch BatchNorm
  statistics the caller folds back in batch order.  The pipelined MD-GAN
  loop uses it so lookahead k-batch generation leaves the trainer thread
  (see :func:`repro.runtime.pipeline.start_resident_generation`).
* **Shared-memory installs** — install payloads spill their large arrays
  (dataset shards, conv weight tensors) into ``multiprocessing.shared_memory``
  segments instead of pushing them through the pipe, so install cost stops
  scaling with shard bytes.  Toggle per backend (``shm_install``) or process
  wide (:func:`set_shm_install_default`); unavailable platforms fall back to
  plain pickling transparently.

Since the transport split (:mod:`repro.runtime.transport`) this module is the
**protocol layer** only: it speaks pickled ``(op, payload)`` messages over a
:class:`~repro.runtime.transport.SlotChannel` per slot and never cares what
moves the bytes.  ``transport="pipe"`` (the default) keeps today's local pool
— child processes over ``multiprocessing`` pipes, bitwise unchanged — while
``transport="tcp"`` puts each slot behind a socket, served either by
loopback processes the transport spawns itself or by
``python -m repro.runtime.worker_host --connect HOST:PORT`` running on
another machine.  Any wire-level failure raises
:class:`~repro.runtime.transport.TransportError` naming the slot index and
the in-flight op, and poisons the pool fail-stop.

The backend also meters its own IPC: :attr:`ResidentBackend.ipc_bytes_sent`
and :attr:`ResidentBackend.ipc_bytes_received` count the pickled bytes that
actually crossed the transport (broken down per protocol op in
:attr:`ResidentBackend.op_bytes_sent` / :attr:`ResidentBackend.op_bytes_received`,
with wall-clock write/read times in :attr:`ResidentBackend.op_transfer_seconds`
so the ``LinkModel`` cost model can be checked against measured traffic),
:attr:`ResidentBackend.shm_bytes_sent` counts the bytes that travelled
through shared-memory segments instead, and
:attr:`ResidentBackend.install_count` counts shipped install payloads (the
warm-reuse benchmark asserts a second ``train()`` ships none).
"""

from __future__ import annotations

import io
import pickle
import time
import traceback
import zlib
from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from .backend import (
    CompletionCollector,
    ExecutorBackend,
    default_max_workers,
    register_backend,
)
from .membership import LOST, MembershipPolicy, PoolMembership, SlotLossError
from .transport import Transport, TransportError, create_transport, transport_default

try:  # gate: platforms without POSIX shared memory fall back to pickling
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - all supported platforms have it
    _shared_memory = None

__all__ = [
    "ResidentBackend",
    "ResidentProgram",
    "PendingSteps",
    "TransportError",
    "SlotLossError",
    "LOST",
    "register_program",
    "get_program",
    "serve_slot",
    "stable_key_hash",
    "set_shm_install_default",
    "shm_install_default",
]


# -- worker programs ---------------------------------------------------------------


@dataclass(frozen=True)
class ResidentProgram:
    """Named behaviour executed inside pool processes for one trainer family.

    ``step`` mutates the resident state in place and returns the light-weight
    per-iteration result; ``pull_params``/``push_params`` read/write the flat
    parameter vectors exchanged at swap/round boundaries without disturbing
    the rest of the resident state.  ``mirror`` (optional) extracts the
    light-weight end-of-run view served by
    :meth:`ResidentBackend.pull_mirror` — typically models, optimizer
    moments and RNG/sampler cursors, but *not* bulky immutable payloads like
    dataset shards, so refreshing the trainer's objects after a successful
    ``train()`` does not scale with shard bytes; when ``None`` the full
    resident state is returned instead.
    """

    name: str
    step: Callable[[Any, Any], Any]
    pull_params: Callable[[Any], Any]
    push_params: Callable[[Any, Any], None]
    mirror: Optional[Callable[[Any], Any]] = None


_PROGRAMS: Dict[str, ResidentProgram] = {}


def register_program(program: ResidentProgram) -> ResidentProgram:
    """Register a :class:`ResidentProgram` under its name (idempotent)."""
    _PROGRAMS[program.name] = program
    return program


def get_program(name: str) -> ResidentProgram:
    """Look up a registered program, importing the built-ins if needed."""
    if name not in _PROGRAMS:
        # The built-in MD-GAN / FL-GAN programs register themselves when
        # repro.runtime.tasks is imported; a freshly spawned pool process may
        # not have imported it yet.
        from . import tasks  # noqa: F401  (registration side effect)
    try:
        return _PROGRAMS[name]
    except KeyError:
        raise ValueError(
            f"Unknown resident program {name!r}; registered: {sorted(_PROGRAMS)}"
        ) from None


# -- stable slot affinity ----------------------------------------------------------


def stable_key_hash(key) -> int:
    """Deterministic hash for worker keys, stable across interpreter runs.

    The builtin ``hash`` is salted by ``PYTHONHASHSEED`` for ``str`` (and any
    tuple containing one), which would make worker->slot affinity — and every
    IPC/byte-meter figure keyed on it — irreproducible between runs.  Integer
    keys map to themselves (preserving the documented ``slot = index mod pool
    size`` assignment); other keys hash their ``repr`` with CRC-32, so any
    key with a stable ``repr`` gets a stable slot.
    """
    if isinstance(key, (int, np.integer)):
        return int(key)
    return zlib.crc32(repr(key).encode("utf-8"))


# -- shared-memory install transport -----------------------------------------------

#: Process-wide default for shipping install payloads via shared memory.
_SHM_INSTALL_DEFAULT = True

#: Arrays below this many bytes ride the pipe; larger ones go through shm.
DEFAULT_SHM_MIN_BYTES = 1 << 16


def set_shm_install_default(enabled: bool) -> None:
    """Deprecated: set the process-wide default for shared-memory installs.

    Process-global mutation has been replaced by explicit config threading —
    set ``TrainingConfig(shm_install=...)`` (or the backend's ``shm_install``
    attribute) instead, so the setting travels with the run that asked for
    it.  Backends whose ``shm_install`` attribute is ``None`` still follow
    this process-wide default for compatibility.
    """
    import warnings

    warnings.warn(
        "set_shm_install_default is deprecated; pass shm_install= through "
        "TrainingConfig / ResidentBackend instead of mutating the "
        "process-wide default",
        DeprecationWarning,
        stacklevel=2,
    )
    global _SHM_INSTALL_DEFAULT
    _SHM_INSTALL_DEFAULT = bool(enabled)


def shm_install_default() -> bool:
    """Return the current process-wide shared-memory-install default."""
    return _SHM_INSTALL_DEFAULT


class _ShmInstall:
    """Wire wrapper for an install payload pre-pickled with shm spill.

    ``blob`` is the payload's pickle stream in which every large array was
    replaced by an :func:`_attach_shm_array` call; the slot process unpickles
    it with :func:`_decode_install`, attaching the segments by name.
    """

    __slots__ = ("blob",)

    def __init__(self, blob: bytes) -> None:
        self.blob = blob


class _InstallPickler(pickle.Pickler):
    """Pickler that spills large, C-contiguous arrays to shared memory.

    Every spilled array is copied once into a fresh ``SharedMemory`` segment
    (recorded in ``segments`` — the caller owns and eventually unlinks them)
    and pickled as a tiny attach handle instead of its bytes.  Everything
    else falls through to the default reducers.
    """

    def __init__(self, buffer, segments: List, min_bytes: int) -> None:
        super().__init__(buffer, protocol=pickle.HIGHEST_PROTOCOL)
        self._segments = segments
        self._min_bytes = min_bytes

    def reducer_override(self, obj):
        """Spill qualifying ndarrays to shm; defer everything else."""
        if (
            type(obj) is np.ndarray
            and obj.nbytes >= self._min_bytes
            and obj.flags.c_contiguous
            and not obj.dtype.hasobject
        ):
            segment = _shared_memory.SharedMemory(create=True, size=obj.nbytes)
            self._segments.append(segment)
            view = np.ndarray(obj.shape, dtype=obj.dtype, buffer=segment.buf)
            view[...] = obj
            del view
            return (_attach_shm_array, (segment.name, obj.shape, obj.dtype.str))
        return NotImplemented


#: Child-process registry of attached segments, keyed by segment name, so the
#: mapping outlives any individual array view; entries are detached when the
#: resident that brought them in is replaced or dropped, and the remainder is
#: cleared when the slot exits.
_ATTACHED_SHM: Dict[str, Any] = {}

#: While :func:`_decode_install` unpickles one install payload, this is the
#: set collecting the segment names that payload attached (``None`` outside a
#: decode); the slot stores the names next to the resident so it can detach
#: exactly those mappings when the resident goes away.
_DECODING_SHM_NAMES: Optional[set] = None


def _attach_untracked(name: str):
    """Attach to a named segment without registering it with any tracker.

    The **parent** owns every segment (it registered at create time and
    unlinks on release); a pool child's attach must therefore not register
    at all — depending on fork timing the child either shares the parent's
    tracker (a duplicate registration that the parent's unlink would
    double-unregister) or has spawned its own (which would then unlink /
    warn about "leaked" segments it never owned at child exit).  Python
    3.13 exposes this as ``SharedMemory(track=False)``; on earlier versions
    the registration call is suppressed around the constructor, the
    standard workaround.
    """
    from multiprocessing import resource_tracker

    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return _shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


def _attach_shm_array(name: str, shape, dtype_str: str) -> np.ndarray:
    """Rebuild an ndarray over the named shared-memory segment (child side)."""
    segment = _ATTACHED_SHM.get(name)
    if segment is None:
        segment = _attach_untracked(name)
        _ATTACHED_SHM[name] = segment
    if _DECODING_SHM_NAMES is not None:
        _DECODING_SHM_NAMES.add(name)
    return np.ndarray(shape, dtype=np.dtype(dtype_str), buffer=segment.buf)


def _decode_install(payload) -> Tuple[Any, set]:
    """Unwrap an install payload; return ``(state, attached_segment_names)``.

    The names travel with the resident so the slot can detach exactly those
    shared-memory mappings once the resident is replaced or dropped — without
    them the mappings (whose names the parent has already unlinked) would pin
    tmpfs pages for the pool's whole lifetime.
    """
    global _DECODING_SHM_NAMES
    if isinstance(payload, _ShmInstall):
        _DECODING_SHM_NAMES = names = set()
        try:
            state = pickle.loads(payload.blob)
        finally:
            _DECODING_SHM_NAMES = None
        return state, names
    return payload, set()


def _try_detach_shm(names: Iterable[str]) -> List[str]:
    """Close attached segments whose arrays are gone; return the rest.

    A segment still referenced by a live array view (e.g. the request that
    dropped the resident is itself still holding the state while its reply is
    in flight) raises ``BufferError`` on close; such names are returned so
    the caller retries on a later message, when the references have died.
    """
    remaining: List[str] = []
    for name in names:
        segment = _ATTACHED_SHM.get(name)
        if segment is None:
            continue
        try:
            segment.close()
        except BufferError:
            remaining.append(name)
            continue
        _ATTACHED_SHM.pop(name, None)
    return remaining


def _release_segments(segments: Iterable) -> None:
    """Close and unlink owned shared-memory segments (best effort)."""
    for segment in segments:
        try:
            segment.close()
        except Exception:  # pragma: no cover - defensive cleanup
            pass
        try:
            segment.unlink()
        except Exception:  # pragma: no cover - already unlinked / shutdown
            pass


# -- slot serving loop (runs in pool processes / remote worker hosts) --------------


def serve_slot(channel) -> None:
    """Serve resident-state requests on ``channel`` until EOF or ``close``.

    The slot side of the wire protocol, transport-agnostic: ``channel`` is
    any :class:`~repro.runtime.transport.SlotChannel` — the child end of a
    ``multiprocessing`` pipe for the local pool, a framed TCP connection for
    :mod:`repro.runtime.worker_host`.

    Residents are stored as ``key -> [program_name, epoch, state,
    shm_names]``; generator copies for resident-side generation live in a
    separate ``key -> [generator, shm_names]`` map (they carry no epoch — the
    caller ships current parameters with every request).  The ``shm_names``
    record which shared-memory mappings each install brought in, so replacing
    or dropping a resident detaches them instead of pinning unlinked tmpfs
    pages for the pool's lifetime (over TCP installs never carry shm, so the
    sets are simply empty).  Every reply is ``("ok", payload)`` or
    ``("err", traceback_text)``; the server re-raises errors, so a failure in
    worker code surfaces in the trainer with the slot traceback attached.
    """
    residents: Dict[Any, list] = {}
    generators: Dict[Any, list] = {}
    pending_detach: List[str] = []
    while True:
        try:
            raw = channel.recv_bytes()
        except (EOFError, OSError):
            break
        # Retry mappings whose arrays were still referenced last time (the
        # dropping request's own reply holds the state until it is sent).
        pending_detach = _try_detach_shm(pending_detach)
        op, payload = pickle.loads(raw)
        if op == "close":
            break
        try:
            if op == "run":
                out = []
                for key, program_name, epoch, install, step_payload in payload:
                    if install is not None:
                        state, shm_names = _decode_install(install)
                        replaced = residents.get(key)
                        if replaced is not None:
                            pending_detach.extend(replaced[3])
                        residents[key] = [program_name, epoch, state, shm_names]
                    entry = residents.get(key)
                    if entry is None:
                        raise RuntimeError(
                            f"no resident state for worker {key!r} and no "
                            "install payload shipped"
                        )
                    if entry[1] != epoch:
                        raise RuntimeError(
                            f"stale resident state for worker {key!r}: resident "
                            f"epoch {entry[1]}, trainer epoch {epoch} (state was "
                            "mutated outside the pool without re-install)"
                        )
                    out.append(get_program(entry[0]).step(entry[2], step_payload))
                reply = ("ok", out)
            elif op == "generate":
                key, install, params, g_inputs = payload
                if install is not None:
                    generator, shm_names = _decode_install(install)
                    replaced = generators.get(key)
                    if replaced is not None:
                        pending_detach.extend(replaced[1])
                    generators[key] = [generator, shm_names]
                entry = generators.get(key)
                if entry is None:
                    raise RuntimeError(
                        f"no resident generator {key!r} and no install payload shipped"
                    )
                generator = entry[0]
                if params is not None:
                    generator.set_parameters(params)
                # Lazy import: keeps module import light and cycle-free (the
                # helper lives next to the fan-out path whose bitwise
                # contract resident-side generation shares).
                from .pipeline import _batchnorm_stats

                reply = ("ok", [_batchnorm_stats(generator, g_input) for g_input in g_inputs])
            elif op == "pull_params":
                out = {}
                for key in payload:
                    entry = residents[key]
                    out[key] = get_program(entry[0]).pull_params(entry[2])
                reply = ("ok", out)
            elif op == "pull_mirror":
                out = {}
                for key in payload:
                    entry = residents[key]
                    mirror = get_program(entry[0]).mirror
                    out[key] = entry[2] if mirror is None else mirror(entry[2])
                reply = ("ok", out)
            elif op == "push_params":
                for key, params in payload.items():
                    entry = residents[key]
                    get_program(entry[0]).push_params(entry[2], params)
                reply = ("ok", None)
            elif op == "pull_state":
                keys, drop = payload
                reply = ("ok", {key: residents[key][2] for key in keys})
                if drop:
                    for key in keys:
                        dropped = residents.pop(key, None)
                        if dropped is not None:
                            pending_detach.extend(dropped[3])
            else:
                raise RuntimeError(f"unknown resident-pool op {op!r}")
        except BaseException:
            reply = ("err", traceback.format_exc())
        try:
            channel.send_bytes(pickle.dumps(reply, protocol=pickle.HIGHEST_PROTOCOL))
        except (BrokenPipeError, OSError):
            break
    # Drop residents first so no array view still exports the shm buffers,
    # then detach; the parent owns (and unlinks) the segments themselves.
    residents.clear()
    generators.clear()
    for segment in _ATTACHED_SHM.values():
        try:
            segment.close()
        except Exception:  # pragma: no cover - lingering exports at exit
            pass
    _ATTACHED_SHM.clear()


# -- trainer-side backend ----------------------------------------------------------


class PendingSteps:
    """In-flight resident request batch; ``result()`` collects the slot replies.

    Returned by :meth:`ResidentBackend.start_steps` and
    :meth:`ResidentBackend.start_generation`.  The request bytes were
    already written to the slot channels at submit time, so the pool slots
    compute while the trainer does other work; ``result`` performs only the
    receives.  Because slot channels are FIFO, handles **must be collected
    in dispatch order** — the backend enforces this and raises otherwise.
    """

    def __init__(
        self, backend: "ResidentBackend", per_slot, size: int, op: str = "run"
    ) -> None:
        self._backend = backend
        self._per_slot = per_slot
        self._size = size
        #: Protocol op in flight (``"run"``/``"generate"``); named by any
        #: :class:`TransportError` raised while collecting.
        self._op = op
        self._values: Optional[List[Any]] = None
        #: Set when the pool died/closed before the replies were read.
        self._dead = False
        #: Slots (elastic pools only) whose entries were lost with their
        #: slot; their result positions come back as :data:`LOST`.
        self._lost_slots: set = set()

    @property
    def done(self) -> bool:
        """Whether the replies were already collected."""
        return self._values is not None

    def result(self) -> List[Any]:
        """Collect the slot replies (in dispatch order) and return the results."""
        if self._values is None:
            self._values = self._backend._collect_steps(self)
        return self._values


class ResidentCollector(CompletionCollector):
    """Completion-order collection over per-key resident step dispatches.

    The FIFO :class:`PendingSteps` contract collects whole step batches in
    dispatch order; this collector is its as-completed sibling for the
    asynchronous aggregation mode.  Each :meth:`dispatch` writes one
    single-item ``run`` frame for its key's slot and :meth:`collect_any`
    returns whichever slot answers next.  Per-slot ordering stays FIFO (slot
    channels are ordered), so the collector keeps one outstanding-op queue
    per slot and always reads the queue head; *across* slots, completion
    order is whatever the pool produces.

    Boundary ops remain available mid-flight through :meth:`pull_params` /
    :meth:`push_params`: their request rides the same slot channel behind any
    outstanding step frames, and step replies received while waiting for the
    boundary reply are buffered and served by a later :meth:`collect_any`.
    Fail-stop semantics are inherited from the backend's ``_recv``/``_send``
    helpers — any wire fault poisons the pool and surfaces as a
    :class:`TransportError` naming the slot and op, and the collector refuses
    further use.
    """

    def __init__(self, backend: "ResidentBackend", program: str) -> None:
        self._backend = backend
        self._program = program
        #: slot -> FIFO of in-flight ops on that channel: ``("run", key)``
        #: for steps, ``(op, None)`` for boundary requests.
        self._per_slot: Dict[int, deque] = defaultdict(deque)
        #: Step results received while waiting for a boundary reply.
        self._ready: deque = deque()
        self._count = 0
        #: Set when the pool died/closed; every later call raises.
        self._dead = False

    @property
    def outstanding(self) -> int:
        """Dispatched steps not yet returned by :meth:`collect_any`.

        Includes step replies already received off the wire (buffered while
        waiting for a boundary reply) but not yet handed to the caller.
        """
        return self._count + len(self._ready)

    def _check_open(self) -> None:
        if self._dead:
            raise RuntimeError(
                "resident collector is closed (pool failure or backend close); "
                "open a new collector to continue"
            )
        self._backend._check_usable()

    def dispatch(self, key, state_supplier: Callable[[], Any], payload) -> None:
        """Start one resident step for ``key`` (installs state on first use).

        The frame goes through the async writer: the target slot may be busy
        computing an earlier step, and an inline send of a large payload
        against a slot blocked writing its own reply would deadlock
        (same rationale as the pipelined lookahead sends).
        """
        self._check_open()
        backend = self._backend
        if any(entry == ("run", key) for entry in self._per_slot[backend._slot_for(key)]):
            raise RuntimeError(f"key {key!r} already has a step in flight")
        epoch = backend._epochs.setdefault(key, 0)
        install = None
        if backend._installed.get(key) != epoch:
            install = state_supplier()
            if install is not None:
                install = backend._encode_install(("state", key), install)
                backend.install_count += 1
        wire = (key, self._program, epoch, install, payload)
        slot_index = backend._slot_for(key)
        backend._send_async(slot_index, ("run", [wire]))
        backend._installed[key] = epoch
        self._per_slot[slot_index].append(("run", key))
        self._count += 1

    def _note_slot_loss(self, slot_index: int, lost_keys: Sequence) -> None:
        """Convert a quarantined slot's queued work into :data:`LOST` results.

        Called by the backend's quarantine: in-flight steps on the dead slot
        become ready ``(key, LOST)`` results (their replies will never
        arrive), queued boundary entries vanish (their caller receives the
        :class:`SlotLossError` directly), and idle keys lost with the slot
        are surfaced as extra ``(key, LOST)`` results so the trainer's
        recovery path learns about them on its normal collection loop.
        """
        queue = self._per_slot.get(slot_index)
        seen = []
        if queue:
            while queue:
                op, key = queue.popleft()
                if op == "run":
                    self._ready.append((key, LOST))
                    self._count -= 1
                    seen.append(key)
        for key in lost_keys:
            if key not in seen:
                self._ready.append((key, LOST))

    def _pop_reply(self, slot_index: int):
        """Read the head reply of one slot's FIFO and return ``(op, key, payload)``."""
        op, key = self._per_slot[slot_index][0]
        try:
            payload = self._backend._recv(slot_index, op)
        except SlotLossError:
            # The quarantine already converted this slot's queue (including
            # the entry we were reading) into LOST results; the collector
            # itself stays open.
            raise
        except BaseException:
            self._dead = True
            raise
        self._per_slot[slot_index].popleft()
        return op, key, payload

    def collect_any(self, timeout: Optional[float] = None):
        """Block until any outstanding step finishes; return ``(key, result)``.

        The wait mirrors ``_recv``'s heartbeat loop across every slot with
        outstanding work: async-writer failures and the transport's
        ``read_timeout`` both surface as a :class:`TransportError` (pool
        poisoned, fail stop) instead of a hang; an explicit ``timeout``
        raises ``TimeoutError`` without poisoning.
        """
        self._check_open()
        if not self._ready and self._count == 0:
            raise RuntimeError("collect_any called with no outstanding steps")
        backend = self._backend
        transport = backend._ensure_transport()
        read_timeout = transport.read_timeout
        poison_deadline = None if read_timeout is None else time.monotonic() + read_timeout
        caller_deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if self._ready:
                return self._ready.popleft()
            lost_one = False
            busy = sorted(slot for slot, queue in self._per_slot.items() if queue)
            for slot_index in busy:
                try:
                    ready = transport.channel(slot_index).poll(0.0)
                except (EOFError, OSError) as exc:
                    op = self._per_slot[slot_index][0][0]
                    fault = backend._wire_fault(
                        slot_index,
                        op,
                        f"resident pool slot {slot_index} died "
                        f"(in-flight op {op!r}: {exc!r})",
                        f"pool slot {slot_index} died mid-request ({op!r}): {exc!r}",
                    )
                    if fault is None or isinstance(fault, SlotLossError):
                        # Quarantined: its queue just became LOST entries in
                        # the ready buffer, served by the loop's next pass.
                        self._note_slot_loss(slot_index, [])
                        lost_one = True
                        break
                    self._dead = True
                    raise fault from exc
                if ready:
                    try:
                        op, key, payload = self._pop_reply(slot_index)
                    except SlotLossError:
                        lost_one = True
                        break
                    if op != "run":  # pragma: no cover - head is run by construction
                        raise RuntimeError(f"unexpected {op!r} reply at slot head")
                    self._count -= 1
                    return key, payload[0]
            if lost_one:
                continue
            error = transport.take_writer_error()
            if error is not None:
                fault = backend._writer_failure(error, op="run")
                if fault is not None and not isinstance(fault, SlotLossError):
                    self._dead = True
                    raise fault
                continue
            now = time.monotonic()
            if caller_deadline is not None and now > caller_deadline:
                raise TimeoutError(
                    f"collect_any timed out after {timeout}s with "
                    f"{self._count} step(s) outstanding"
                )
            if poison_deadline is not None and now > poison_deadline:
                slot_index = busy[0]
                op = self._per_slot[slot_index][0][0]
                fault = backend._wire_fault(
                    slot_index,
                    op,
                    f"timed out after {read_timeout}s waiting for pool slot "
                    f"{slot_index} to answer {op!r} (frame dropped, or "
                    "read_timeout shorter than the slot's compute time)",
                    f"timed out after {read_timeout}s waiting for pool slot "
                    f"{slot_index} to answer {op!r}",
                )
                if fault is None or isinstance(fault, SlotLossError):
                    # Survivable loss: restart the heartbeat clock for the
                    # remaining slots and keep collecting.
                    poison_deadline = time.monotonic() + read_timeout
                    continue
                self._dead = True
                raise fault
            time.sleep(0.005)

    def _boundary_request(self, slot_index: int, op: str, wire_payload):
        """Send one boundary op on a slot and wait for *its* reply.

        Step replies queued ahead of it on the channel are collected into the
        ready buffer (their FIFO position is fixed; the boundary reply cannot
        arrive before them).

        Under an elastic membership policy a :class:`SlotLossError` naming
        *this* slot propagates immediately (the queue was already converted to
        LOST results); a loss on a *different* slot is deferred until this
        slot's reply has been read, so the channel stream stays aligned.
        """
        backend = self._backend
        backend._send_async(slot_index, (op, wire_payload))
        self._per_slot[slot_index].append((op, None))
        pending_loss = None
        try:
            backend._flush_sends()
        except SlotLossError as exc:
            if exc.slot_index == slot_index:
                raise
            pending_loss = exc
        while True:
            head_op, key, payload = self._pop_reply(slot_index)
            if head_op == op:
                if pending_loss is not None:
                    raise pending_loss
                return payload
            self._ready.append((key, payload[0]))
            self._count -= 1

    def pull_params(self, keys: Sequence) -> Dict[Any, Any]:
        """Fetch flat parameter vectors mid-flight (state stays resident)."""
        keys = list(keys)
        if not keys:
            return {}
        self._check_open()
        self._backend._require_installed(keys, "pull_params")
        merged: Dict[Any, Any] = {}
        for slot_index, slot_keys in self._backend._grouped(keys).items():
            merged.update(self._boundary_request(slot_index, "pull_params", slot_keys))
        return merged

    def push_params(self, params_by_key: Dict[Any, Any]) -> None:
        """Write flat parameter vectors into installed residents mid-flight."""
        if not params_by_key:
            return
        self._check_open()
        self._backend._require_installed(params_by_key, "push_params")
        for slot_index, slot_keys in self._backend._grouped(params_by_key).items():
            self._boundary_request(
                slot_index,
                "push_params",
                {key: params_by_key[key] for key in slot_keys},
            )

    def drain(self) -> int:
        """Collect and discard every outstanding step; return the count.

        The steps *did* run in the pool (resident state reflects them) —
        only their results are dropped, mirroring ``drain_inflight``.
        """
        drained = len(self._ready)
        self._ready.clear()
        while self._count:
            self.collect_any()
            drained += 1
        return drained

    def close(self) -> None:
        """Drain outstanding work (when the pool is healthy) and detach."""
        if not self._dead and self._backend._broken_reason is None:
            self.drain()
        self._dead = True
        if self._backend._collector is self:
            self._backend._collector = None


class ResidentBackend(ExecutorBackend):
    """Persistent process pool with resident per-worker state.

    The generic :meth:`map_ordered` contract is honoured (inline, serial) so
    the backend is a drop-in ``ExecutorBackend``; trainers that recognise
    :attr:`supports_resident` use the richer protocol below instead.

    The pool is a long-lived serving layer: its owner (normally the trainer
    that built it) decides when it dies — ``close()`` or the context-manager
    exit — and a ``train()`` call neither owns nor tears it down, so warm
    resident state survives across ``train()`` calls and re-entry ships no
    install payloads as long as the state epochs still match.
    """

    name = "resident"
    #: Capability flag the trainers in :mod:`repro.core` dispatch on
    #: (``getattr(backend, "supports_resident", False)``); a third-party
    #: backend that implements this class's protocol methods can set it to
    #: opt into the resident code paths.
    supports_resident = True
    #: Whether :meth:`start_generation` is available (resident-side k-batch
    #: generation); consulted by the pipelined MD-GAN loop.
    supports_resident_generation = True

    def __init__(
        self,
        max_workers: Optional[int] = None,
        shm_install: Optional[bool] = None,
        shm_min_bytes: int = DEFAULT_SHM_MIN_BYTES,
        transport: Optional[Union[str, Transport]] = None,
        transport_address: Optional[str] = None,
        connect_timeout: float = 30.0,
        read_timeout: Optional[float] = None,
        membership_policy: Optional[MembershipPolicy] = None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers or default_max_workers()
        #: Elastic membership policy (:class:`MembershipPolicy`) or ``None``
        #: for the fail-stop default.  ``None`` (or a ``fail_stop`` policy)
        #: runs zero elastic code: any wire fault poisons the pool exactly as
        #: before the membership layer existed.
        self.membership_policy = membership_policy
        #: Ship install payloads via shared memory?  ``None`` follows the
        #: process-wide default (:func:`set_shm_install_default`); platforms
        #: without ``multiprocessing.shared_memory`` — and transports whose
        #: endpoints don't share a kernel (``tcp``) — fall back to pickling.
        self.shm_install = shm_install
        #: Arrays at or above this many bytes are spilled to shared memory.
        self.shm_min_bytes = shm_min_bytes
        #: Transport carrying the slot channels: a name (``"pipe"``/
        #: ``"tcp"``), a pre-built :class:`~repro.runtime.transport.Transport`
        #: instance (tests inject fault wrappers this way), or ``None`` to
        #: follow the process-wide default
        #: (:func:`repro.runtime.transport.set_transport_default`).
        self.transport = transport
        #: ``"HOST:PORT"`` for the ``tcp`` transport's external mode
        #: (``None`` = loopback with spawned workers); ignored by ``pipe``.
        self.transport_address = transport_address
        #: Seconds to wait for worker connections when opening a ``tcp`` pool.
        self.connect_timeout = connect_timeout
        #: Max seconds to wait for any single slot reply (``None`` = forever);
        #: how a dropped/truncated frame surfaces as an error, not a hang.
        self.read_timeout = read_timeout
        self._transport: Optional[Transport] = None
        #: Trainer-side truth: current state epoch per worker key.
        self._epochs: Dict[Any, int] = {}
        #: Epoch of the copy installed in the pool, per worker key.
        self._installed: Dict[Any, int] = {}
        #: Slots holding a copy of each resident generator (see
        #: :meth:`start_generation`); only structure installs are tracked.
        self._generator_slots: Dict[Any, set] = {}
        #: Per ``(generator key, slot)``: the handle version whose parameter
        #: vector was last shipped.  Requests whose versioned
        #: :class:`~repro.runtime.pipeline.GeneratorHandle` matches ship no
        #: parameter payload at all (the slot copy is already bit-identical);
        #: unversioned handles never populate this and re-ship every time.
        self._generator_versions: Dict[Tuple[Any, int], int] = {}
        #: Shared-memory segments owned by this backend, keyed by the install
        #: they carried; released on re-install, reclaim and close.
        self._shm_segments: Dict[Any, List] = {}
        #: Set when a pool operation failed; the resident state is then lost
        #: and every later protocol call refuses to run (fail-stop).
        self._broken_reason: Optional[str] = None
        #: Pickled bytes shipped to / received from the pool (IPC meter).
        self.ipc_bytes_sent = 0
        self.ipc_bytes_received = 0
        #: The same bytes broken down per protocol op (``"run"``,
        #: ``"generate"``, ``"pull_params"``, ...), plus the wall-clock
        #: seconds the trainer thread spent writing/reading each op's frames.
        #: ``experiments/traffic_check.py`` compares these against the
        #: ``LinkModel`` cost model's predictions.
        self.op_bytes_sent: Dict[str, int] = defaultdict(int)
        self.op_bytes_received: Dict[str, int] = defaultdict(int)
        self.op_transfer_seconds: Dict[str, float] = defaultdict(float)
        #: Bytes that travelled through shared-memory segments instead of the
        #: slot channels (one segment copy per spilled array).
        self.shm_bytes_sent = 0
        #: Number of install payloads shipped (worker state or generator
        #: copies); a warm re-entry ships none.
        self.install_count = 0
        #: Bytes of generator parameter vectors shipped with ``generate``
        #: requests.  The serving layer's param-cache regression test pins
        #: that repeat requests against an unchanged generator add zero.
        self.param_bytes_sent = 0
        #: Dispatched-but-uncollected :class:`PendingSteps`, in dispatch
        #: order.  Slot channels are FIFO, so replies must be read in this
        #: order; boundary ops (pull/push) refuse to run while it is
        #: non-empty.
        self._pending: List[PendingSteps] = []
        #: The open :class:`ResidentCollector`, if any; mutually exclusive
        #: with whole-pool boundary ops while it has outstanding steps.
        self._collector: Optional[ResidentCollector] = None
        #: Live :class:`PoolMembership` state, built lazily on first use when
        #: an elastic :attr:`membership_policy` is set; ``None`` otherwise.
        self._membership: Optional[PoolMembership] = None

    # -- generic ExecutorBackend duty ------------------------------------------
    def map_ordered(self, fn, tasks):
        """Inline fallback for callers that use the stateless map contract."""
        return [fn(task) for task in tasks]

    # -- pool lifecycle ---------------------------------------------------------
    def _ensure_transport(self) -> Transport:
        """Open the pool's transport (and its slot channels) on first use.

        A ``transport`` given as a string (or left ``None`` — the process-wide
        default) is built via the transport registry with this backend's
        address/timeout settings; a pre-built :class:`Transport` instance is
        adopted as-is, which is how tests inject fault-wrapped channels and
        how callers hand over a ``tcp`` transport that is already listening
        for external worker hosts.
        """
        if self._transport is None:
            transport = self.transport
            if transport is None or isinstance(transport, str):
                name, address = (
                    (transport, self.transport_address)
                    if transport is not None
                    else transport_default()
                )
                if self.transport_address is not None:
                    address = self.transport_address
                transport = create_transport(
                    name,
                    slot_main=serve_slot,
                    address=address,
                    connect_timeout=self.connect_timeout,
                    read_timeout=self.read_timeout,
                )
            self._transport = transport
        if not self._transport.started:
            if self._elastic() is not None and hasattr(self._transport, "accept_joiners"):
                # Keep the tcp listener open past the founding accepts so
                # late joiners can attach through the versioned re-handshake.
                self._transport.accept_joiners = True
            self._transport.open(self.max_workers)
        return self._transport

    def _poison(self, reason: str) -> None:
        """Fail-stop after a pool error: discard the pool and refuse to go on.

        A failed or half-executed request leaves resident state (and, with
        multiple in-flight slot replies, the request/reply pipes) in an
        unknown condition; some residents may hold steps the trainer never
        merged.  Continuing — or re-installing from the trainer's stale
        copies — would silently diverge from the serial reference, so the
        backend tears the pool down and every later protocol call raises.
        """
        self._broken_reason = reason
        self.close()

    def _check_usable(self) -> None:
        if self._broken_reason is not None:
            raise RuntimeError(
                "resident pool previously failed and its worker state was lost; "
                "rebuild the trainer/backend to continue. Original failure:\n"
                f"{self._broken_reason}"
            )

    # -- elastic membership -----------------------------------------------------
    def _elastic(self) -> Optional[PoolMembership]:
        """The live membership state, or ``None`` under the fail-stop default."""
        if self._membership is None:
            policy = self.membership_policy
            if policy is not None and policy.elastic:
                self._membership = PoolMembership(policy=policy)
        return self._membership

    @property
    def membership(self) -> Optional[PoolMembership]:
        """Public alias for the live membership state (``None`` if fail-stop)."""
        return self._elastic()

    def membership_counters(self) -> Dict[str, int]:
        """Membership-event counts (empty for fail-stop pools) for the meters."""
        membership = self._elastic()
        return {} if membership is None else membership.counters_snapshot()

    def _alive_slots(self) -> List[int]:
        """Slot indices still in service (all of them for fail-stop pools)."""
        transport = self._ensure_transport()
        membership = self._elastic()
        if membership is None:
            return list(range(transport.num_slots))
        return [
            index for index in range(transport.num_slots) if index not in membership.quarantined
        ]

    def alive_slot_count(self) -> int:
        """Number of slots still in service."""
        return len(self._alive_slots())

    def quarantine_slot(self, slot_index: int, reason: str = "") -> List[Any]:
        """Remove one dead slot from service; return the worker keys lost with it.

        Elastic pools call this instead of :meth:`_poison`: the slot's channel
        is closed best-effort (a :class:`TransportError`/``OSError`` during
        this cleanup must never mask the loss being handled — same discipline
        as the trainers' ``_cleanup_after_failure``), every resident installed
        there is forgotten and invalidated (the trainer's copy becomes
        authoritative again), and the lost keys are queued in
        ``membership.pending_loss`` for the trainer's recovery path.
        """
        membership = self._elastic()
        if membership is None:
            raise RuntimeError("quarantine_slot requires an elastic membership policy")
        if slot_index in membership.quarantined:
            return []
        # Keys resolve against the *pre-quarantine* placement.
        lost = [key for key in list(self._installed) if self._slot_for(key) == slot_index]
        membership.quarantined.add(slot_index)
        membership.record("slot_loss", slot=slot_index, detail=reason)
        for key in lost:
            self._installed.pop(key, None)
            self.invalidate(key)
            self._release_shm(("state", key))
            membership.pending_loss.add(key)
        for slots in self._generator_slots.values():
            slots.discard(slot_index)
        for pair in [p for p in self._generator_versions if p[1] == slot_index]:
            self._generator_versions.pop(pair, None)
        transport = self._ensure_transport()
        try:
            transport.channel(slot_index).close()
        except Exception:
            pass
        reap = getattr(transport, "reap_slot", None)
        if reap is not None:  # pragma: no cover - optional transport hook
            try:
                reap(slot_index)
            except Exception:
                pass
        if self._collector is not None and not self._collector._dead:
            self._collector._note_slot_loss(slot_index, lost)
        return lost

    def _wire_fault(
        self,
        slot_index: Optional[int],
        op: Optional[str],
        message: str,
        reason: str,
    ) -> Optional[TransportError]:
        """Route one wire fault: poison (fail-stop) or quarantine (elastic).

        Returns the exception the caller should raise — a plain
        :class:`TransportError` after poisoning, a :class:`SlotLossError`
        after a survivable quarantine — or ``None`` when the fault refers to
        an already-quarantined slot and is stale news the caller should
        simply ignore.
        """
        membership = self._elastic()
        if membership is not None and slot_index is not None:
            if slot_index in membership.quarantined:
                return None
            if len(self._alive_slots()) > 1:
                lost = self.quarantine_slot(slot_index, reason=reason)
                return SlotLossError(message, slot_index=slot_index, op=op, lost_keys=lost)
        self._poison(reason)
        return TransportError(message, slot_index=slot_index, op=op)

    def admit_joiner(self, timeout: float = 0.0) -> Optional[int]:
        """Admit one late joiner waiting on the transport, if any.

        Returns the new slot index (recorded as a ``join`` event) or ``None``.
        Fail-stop pools never admit joiners — their transports close the
        listen path at open time.
        """
        membership = self._elastic()
        if membership is None:
            return None
        transport = self._ensure_transport()
        slot_index = transport.poll_joiner(timeout)
        if slot_index is not None:
            membership.record("join", slot=slot_index)
            self._inherit_orphans(slot_index)
        return slot_index

    def _inherit_orphans(self, slot_index: int) -> None:
        """Point keys stranded on quarantined slots at a freshly joined slot.

        Their installs were popped at quarantine time, so the next dispatch
        reinstalls them (from whatever state the trainer's recovery restored)
        on the new slot.
        """
        membership = self._elastic()
        for key, slot in list(membership.assignments.items()):
            if slot in membership.quarantined:
                membership.assignments[key] = slot_index
                membership.record(
                    "reassign", slot=slot_index, worker=key, detail=f"from slot {slot}"
                )

    def open_replacement_slot(self) -> Optional[int]:
        """Build one replacement slot (respawn/accept), if the transport can.

        Used by the ``wait`` policy to heal lost capacity; returns the new
        slot index, or ``None`` when the transport has no local join path or
        the attempt failed (the caller backs off and retries).
        """
        membership = self._elastic()
        if membership is None:
            return None
        transport = self._ensure_transport()
        if not transport.supports_join:
            return None
        membership.record("reconnect_attempt")
        try:
            slot_index = transport.open_slot()
        except TransportError:
            return None
        membership.record("join", slot=slot_index)
        self._inherit_orphans(slot_index)
        return slot_index

    def close(self) -> None:
        """Shut the pool down; resident state is discarded (trainer re-installs)."""
        if self._collector is not None:
            # Its queued replies die with the pool; later use must raise.
            self._collector._dead = True
            self._collector = None
        if self._transport is not None:
            transport = self._transport
            # Stop the async writer first: its queued sends either land
            # (slots still drain their channels until they see the close
            # message) or fail against an already-dead slot, which is
            # irrelevant mid-teardown.
            transport.stop_writer()
            # Any uncollected steps die with the pool; their handles would
            # read from closed channels, so mark them dead (``result()``
            # then raises).
            for handle in self._pending:
                handle._dead = True
            self._pending.clear()
            close_frame = pickle.dumps(("close", None), protocol=pickle.HIGHEST_PROTOCOL)
            for slot_index in range(transport.num_slots):
                try:
                    transport.channel(slot_index).send_bytes(close_frame)
                except (TransportError, OSError):
                    pass
            transport.close()
            self._transport = None
        else:
            for handle in self._pending:
                handle._dead = True
            self._pending.clear()
        # Segments are unlinked only after the slot processes are gone, so a
        # queued install message can never race its own backing store.
        for segments in self._shm_segments.values():
            _release_segments(segments)
        self._shm_segments.clear()
        self._installed.clear()
        self._generator_slots.clear()
        self._generator_versions.clear()

    # -- wire helpers -----------------------------------------------------------
    def _slot_for(self, key) -> int:
        membership = self._elastic()
        if membership is None:
            return stable_key_hash(key) % self._ensure_transport().num_slots
        slot = membership.assignments.get(key)
        if slot is not None and slot not in membership.quarantined:
            return slot
        # Hash placement against the *founding* pool size (late-join slots
        # never shift existing hash targets), remapped deterministically onto
        # the surviving slots when the primary is quarantined.  The overlay
        # entry pins the choice: resident state cannot migrate between slots
        # without a reinstall, so an assignment only ever changes when its
        # slot dies (the quarantine pops the install, forcing that reinstall).
        num_slots = self._ensure_transport().num_slots
        primary = stable_key_hash(key) % min(self.max_workers, num_slots)
        if primary in membership.quarantined:
            alive = self._alive_slots()
            if not alive:
                raise TransportError("resident pool has no surviving slots")
            primary = alive[stable_key_hash(key) % len(alive)]
        if slot is not None and primary != slot:
            membership.record("reassign", slot=primary, worker=key, detail=f"from slot {slot}")
        membership.assignments[key] = primary
        return primary

    def _meter_sent(self, op: str, nbytes: int) -> None:
        self.ipc_bytes_sent += nbytes
        self.op_bytes_sent[op] += nbytes

    def _send(self, slot_index: int, message: tuple) -> None:
        # Queued async sends must land first: channels are FIFO per slot, and
        # a direct send overtaking a queued one would corrupt the stream
        # order.
        self._flush_sends()
        op = message[0]
        transport = self._ensure_transport()
        data = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        self._meter_sent(op, len(data))
        started = time.perf_counter()
        try:
            transport.channel(slot_index).send_bytes(data)
        except (BrokenPipeError, OSError) as exc:
            fault = self._wire_fault(
                slot_index,
                op,
                f"resident pool slot {slot_index} is gone "
                f"(transport send failed; in-flight op {op!r})",
                f"transport to pool slot {slot_index} failed while sending {op!r}: {exc!r}",
            )
            if fault is None:
                fault = SlotLossError(
                    f"resident pool slot {slot_index} is quarantined "
                    f"(send of {op!r} refused)",
                    slot_index=slot_index,
                    op=op,
                )
            raise fault from exc
        self.op_transfer_seconds[op] += time.perf_counter() - started

    def _send_async(self, slot_index: int, message: tuple) -> None:
        """Queue a send on the transport's writer thread instead of inline.

        Used for dispatches that may target a slot *currently computing* an
        earlier request (the pipelined lookahead generation): a large
        payload — generator parameters easily exceed the channel's buffer —
        would otherwise block the trainer thread in ``send_bytes`` while the
        slot is blocked writing its own (large) step reply, neither side
        reading: a send/send deadlock.  The writer thread takes the blocking
        write instead, the trainer proceeds to collect replies (which
        unblocks the slot), and per-slot FIFO order is preserved because
        every direct send first flushes the queue (:meth:`_flush_sends`).
        """
        op = message[0]
        transport = self._ensure_transport()
        data = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        self._meter_sent(op, len(data))
        transport.send_async(slot_index, data)

    def _writer_failure(self, error: tuple, op: Optional[str]) -> Optional[TransportError]:
        """Route a recorded async-send failure; build the error to raise.

        Fail-stop pools poison and get a :class:`TransportError`; elastic
        pools quarantine the failed slot and get a :class:`SlotLossError`.
        ``None`` means the failure hit an already-quarantined slot and is
        stale news the caller should ignore.
        """
        slot_index, reason = error
        return self._wire_fault(
            slot_index,
            op,
            f"resident pool async send failed:\n{reason}",
            reason,
        )

    def _flush_sends(self) -> None:
        """Block until every queued async send has been written to its channel."""
        if self._transport is not None:
            self._transport.flush_sends()
            error = self._transport.take_writer_error()
            if error is not None:
                fault = self._writer_failure(error, op=None)
                if fault is not None:
                    raise fault

    def _recv(self, slot_index: int, op: str):
        transport = self._ensure_transport()
        channel = transport.channel(slot_index)
        timeout = transport.read_timeout
        deadline = None if timeout is None else time.monotonic() + timeout
        try:
            # Heartbeat wait: if an *async* send failed (recorded by the
            # writer thread) the reply we are waiting for may never come —
            # surface the failure instead of blocking forever.  A full
            # flush here would deadlock (the writer may legitimately be
            # blocked behind a busy slot whose reply we are about to read).
            # The same loop enforces the transport's read timeout, so a
            # dropped frame surfaces as a TransportError instead of a hang.
            while not channel.poll(0.05):
                error = transport.take_writer_error()
                if error is not None:
                    fault = self._writer_failure(error, op=op)
                    if fault is not None:
                        raise fault
                if deadline is not None and time.monotonic() > deadline:
                    fault = self._wire_fault(
                        slot_index,
                        op,
                        f"timed out after {timeout}s waiting for pool slot "
                        f"{slot_index} to answer {op!r} (frame dropped, or "
                        "read_timeout shorter than the slot's compute time)",
                        f"timed out after {timeout}s waiting for pool slot "
                        f"{slot_index} to answer {op!r}",
                    )
                    if fault is None:  # pragma: no cover - stale quarantine echo
                        fault = SlotLossError(
                            f"pool slot {slot_index} is quarantined",
                            slot_index=slot_index,
                            op=op,
                        )
                    raise fault
            # Timed from first-byte-ready, so the figure is frame transfer,
            # not the slot's compute time (the poll loop above absorbs that).
            started = time.perf_counter()
            data = channel.recv_bytes()
        except (EOFError, OSError) as exc:
            fault = self._wire_fault(
                slot_index,
                op,
                f"resident pool slot {slot_index} died (in-flight op {op!r}: {exc!r})",
                f"pool slot {slot_index} died mid-request ({op!r}): {exc!r}",
            )
            if fault is None:  # pragma: no cover - stale quarantine echo
                fault = SlotLossError(
                    f"pool slot {slot_index} is quarantined",
                    slot_index=slot_index,
                    op=op,
                )
            raise fault from exc
        self.op_transfer_seconds[op] += time.perf_counter() - started
        self.ipc_bytes_received += len(data)
        self.op_bytes_received[op] += len(data)
        status, payload = pickle.loads(data)
        if status != "ok":
            # The slot may have executed part of a batch before failing, and
            # other slots may still have unread replies in flight: both leave
            # state/channels inconsistent, so fail stop rather than desync.
            self._poison(payload)
            raise RuntimeError(f"resident worker program failed:\n{payload}")
        return payload

    def _grouped(self, keys: Iterable) -> Dict[int, List]:
        grouped: Dict[int, List] = defaultdict(list)
        for key in keys:
            grouped[self._slot_for(key)].append(key)
        return grouped

    def _grouped_exchange(
        self, op: str, grouped: Dict[int, List], payload_for: Callable[[List], Any]
    ) -> Tuple[Dict[Any, Any], Optional[SlotLossError]]:
        """Send one boundary op per slot group and receive every reply.

        Fail-stop pools behave exactly as before (the first fault poisons and
        raises).  Elastic pools keep going: a slot lost mid-exchange is
        skipped, the surviving slots' replies are still read (their frames
        are already queued on their channels — skipping them would
        desynchronize every later op), and the first :class:`SlotLossError`
        is returned for the caller to surface or swallow.
        """
        membership = self._elastic()
        slot_loss: Optional[SlotLossError] = None
        sent: List[int] = []
        for slot_index, slot_keys in grouped.items():
            try:
                self._send(slot_index, (op, payload_for(slot_keys)))
            except SlotLossError as exc:
                slot_loss = slot_loss or exc
                continue
            sent.append(slot_index)
        merged: Dict[Any, Any] = {}
        for slot_index in sent:
            if membership is not None and slot_index in membership.quarantined:
                continue  # quarantined after its send; reply unreadable
            try:
                reply = self._recv(slot_index, op)
            except SlotLossError as exc:
                slot_loss = slot_loss or exc
                continue
            if isinstance(reply, dict):
                merged.update(reply)
        return merged, slot_loss

    def _require_installed(self, keys: Iterable, op: str) -> None:
        missing = [key for key in keys if not self.installed(key)]
        if missing:
            raise ValueError(f"{op} requires installed resident state; missing for {missing}")

    def _require_no_inflight(self, op: str) -> None:
        if self._pending:
            raise RuntimeError(
                f"{op} cannot run while {len(self._pending)} step batch(es) are "
                "in flight; collect the PendingSteps handles (or call "
                "drain_inflight()) first"
            )
        if self._collector is not None and self._collector.outstanding:
            raise RuntimeError(
                f"{op} cannot run while the open collector has "
                f"{self._collector.outstanding} step(s) outstanding; collect "
                "them (or use the collector's own pull_params/push_params, "
                "which interleave safely) first"
            )

    # -- shared-memory install encoding ----------------------------------------
    def _shm_active(self) -> bool:
        """Whether installs should (and can) use shared-memory transport.

        Requires the platform to have ``multiprocessing.shared_memory`` *and*
        the pool's transport to keep both endpoints on one kernel
        (``supports_shm`` — pipes yes, sockets no); otherwise installs ride
        the slot channels as plain pickled bytes.
        """
        if _shared_memory is None:
            return False
        if not self._ensure_transport().supports_shm:
            return False
        enabled = self.shm_install
        if enabled is None:
            enabled = _SHM_INSTALL_DEFAULT
        return bool(enabled)

    def _release_shm(self, segment_key) -> None:
        """Unlink the segments backing one install (no-op when absent)."""
        _release_segments(self._shm_segments.pop(segment_key, ()))

    def _encode_install(self, segment_key, payload):
        """Encode one install payload, spilling its large arrays to shm.

        Returns the payload unchanged when shared memory is disabled or
        unavailable, or when spilling fails (e.g. ``/dev/shm`` exhausted) —
        installs must never fail just because the fast path did.  Fresh
        segments replace (and release) any previous ones recorded under
        ``segment_key``; by the time any later op touches this resident the
        new install has superseded the old views, and Linux keeps existing
        child mappings valid after an unlink.
        """
        if not self._shm_active():
            return payload
        segments: List = []
        try:
            buffer = io.BytesIO()
            _InstallPickler(buffer, segments, self.shm_min_bytes).dump(payload)
        except Exception:  # pragma: no cover - spill failure falls back
            _release_segments(segments)
            return payload
        self._release_shm(segment_key)
        if segments:
            self._shm_segments[segment_key] = segments
            self.shm_bytes_sent += sum(segment.size for segment in segments)
        return _ShmInstall(buffer.getvalue())

    # -- invalidation protocol --------------------------------------------------
    def installed(self, key) -> bool:
        """Whether the pool holds a *current* resident copy for ``key``."""
        return self._installed.get(key, -1) == self._epochs.get(key, 0)

    def invalidate(self, key) -> None:
        """Mark trainer-side state authoritative for ``key``.

        Bumps the state epoch, so the next :meth:`run_steps` ships a fresh
        install and any lingering pool copy is rejected as stale.
        """
        self._epochs[key] = self._epochs.get(key, 0) + 1

    # -- resident protocol ------------------------------------------------------
    def open_collector(self, program: Optional[str] = None) -> "ResidentCollector":
        """Open a :class:`ResidentCollector` for as-completed step collection.

        ``program`` names the registered :class:`ResidentProgram` every
        dispatched step runs (mandatory here, unlike the stateless backends).
        Only one collector is live at a time; reopening detaches a previous
        (fully collected) one.
        """
        if program is None:
            raise ValueError(
                "ResidentBackend.open_collector requires the resident program name"
            )
        self._check_usable()
        self._require_no_inflight("open_collector")
        if self._collector is not None:
            self._collector._dead = True
        collector = ResidentCollector(self, program)
        self._collector = collector
        return collector

    def start_steps(
        self,
        program: str,
        items: Sequence[Tuple[Any, Callable[[], Any], Any]],
    ) -> PendingSteps:
        """Dispatch one per-iteration step per ``(key, state_supplier, payload)``.

        The request is written to the slot pipes immediately and a
        :class:`PendingSteps` handle is returned; the pool computes while the
        trainer does other work, and ``handle.result()`` collects the replies
        (in item order).  Multiple batches may be in flight at once — slots
        execute them FIFO — but handles must be collected in dispatch order,
        and boundary ops (pull/push/pull_state) are refused while any step is
        uncollected.

        ``state_supplier`` is invoked (trainer-side, at dispatch) only when
        the pool holds no current copy for ``key`` — first participation,
        after an invalidation, or after a pool restart — and its return value
        is shipped as the install payload.  The install is recorded at send
        time, so a later dispatch in the same flight window does not re-ship
        (and thereby clobber) resident state with the trainer's stale copy.
        """
        if not items:
            return PendingSteps(self, {}, 0)
        self._check_usable()
        per_slot: Dict[int, List[Tuple[int, tuple]]] = defaultdict(list)
        for position, (key, state_supplier, payload) in enumerate(items):
            epoch = self._epochs.setdefault(key, 0)
            install = None
            if self._installed.get(key) != epoch:
                install = state_supplier()
                if install is not None:
                    install = self._encode_install(("state", key), install)
                    self.install_count += 1
            wire = (key, program, epoch, install, payload)
            per_slot[self._slot_for(key)].append((position, wire))
        handle = PendingSteps(self, dict(per_slot), len(items), op="run")
        membership = self._elastic()
        for slot_index, entries in per_slot.items():
            if membership is not None and slot_index in membership.quarantined:
                # The slot died between placement and send (e.g. a writer
                # failure quarantined it mid-loop); its steps are lost.
                handle._lost_slots.add(slot_index)
                continue
            try:
                self._send(slot_index, ("run", [wire for _, wire in entries]))
            except SlotLossError:
                # This slot's steps are lost whether the fault named it (its
                # quarantine) or another slot (nothing was written here); the
                # install was not recorded, so the next dispatch re-ships.
                handle._lost_slots.add(slot_index)
                continue
            for _, (key, _, epoch, _, _) in entries:
                self._installed[key] = epoch
        self._pending.append(handle)
        return handle

    def start_generation(
        self,
        handle,
        generator_supplier: Callable[[], Any],
        params,
        g_inputs: Sequence[np.ndarray],
    ) -> PendingSteps:
        """Dispatch per-batch generator forward passes across the pool slots.

        ``handle`` is a :class:`~repro.runtime.pipeline.GeneratorHandle`
        naming the generator (a bare string key is accepted as a deprecated
        shim and behaves like an unversioned handle).  Batch ``j`` runs on
        slot ``j mod pool size`` against that slot's resident copy of the
        generator: ``generator_supplier()`` is shipped (once per slot, on
        first use or after a pool restart) as the structural install, and
        ``params`` — the current flat parameter vector — is written into the
        copy whenever the slot's cached handle version does not prove the
        copy current.  With a *versioned* handle an unchanged generator
        therefore ships **zero parameter bytes** per repeat request (pinned
        by :attr:`param_bytes_sent`); an unversioned handle re-ships every
        time, which is always safe.  Each batch's reply is ``(images,
        batchnorm_stats)`` exactly as
        :func:`repro.runtime.pipeline._batchnorm_stats` produces them; the
        caller folds the statistics back in batch order to reproduce the
        serial running-stat trajectory bitwise (same contract as
        ``fan_out_generation``).

        Returns a :class:`PendingSteps` handle whose ``result()`` yields the
        per-batch replies in batch order; it participates in the same
        dispatch-order collection discipline as step batches.
        """
        if isinstance(handle, str):
            import warnings

            warnings.warn(
                "passing a bare string key to ResidentBackend.start_generation "
                "is deprecated; pass a repro.runtime.GeneratorHandle instead",
                DeprecationWarning,
                stacklevel=2,
            )
            from .pipeline import GeneratorHandle

            handle = GeneratorHandle(key=handle)
        key, version = handle.key, handle.version
        if not len(g_inputs):
            return PendingSteps(self, {}, 0)
        self._check_usable()
        nslots = self._ensure_transport().num_slots
        per_slot: Dict[int, List[Tuple[int, Any]]] = defaultdict(list)
        for position, g_input in enumerate(g_inputs):
            per_slot[position % nslots].append((position, g_input))
        installed_slots = self._generator_slots.setdefault(key, set())
        for slot_index, entries in per_slot.items():
            install = None
            if slot_index not in installed_slots:
                install = self._encode_install(
                    ("generator", key, slot_index),
                    generator_supplier(),
                )
                self.install_count += 1
            # Param-cache: skip the parameter payload when this slot's copy
            # already holds exactly this version's bits.  Sends are FIFO per
            # slot, so "last version shipped" is also "version the copy will
            # hold by the time this request executes".
            slot_params = params
            if version is not None and self._generator_versions.get((key, slot_index)) == version:
                slot_params = None
            self._send_async(
                slot_index,
                ("generate", (key, install, slot_params, [g_input for _, g_input in entries])),
            )
            installed_slots.add(slot_index)
            if slot_params is not None:
                self.param_bytes_sent += int(getattr(slot_params, "nbytes", 0))
            if version is not None:
                self._generator_versions[(key, slot_index)] = version
        pending = PendingSteps(self, dict(per_slot), len(g_inputs), op="generate")
        self._pending.append(pending)
        return pending

    def _collect_steps(self, handle: PendingSteps) -> List[Any]:
        """Receive the slot replies for ``handle`` (dispatch order enforced)."""
        if handle._dead:
            raise RuntimeError(
                "resident pool was closed or poisoned before these steps were "
                "collected; their results are lost"
            )
        if not handle._per_slot:
            return []
        self._check_usable()
        if not self._pending or self._pending[0] is not handle:
            raise RuntimeError(
                "resident step handles must be collected in dispatch order "
                "(slot pipes are FIFO)"
            )
        results: List[Any] = [None] * handle._size
        membership = self._elastic()
        slot_loss: Optional[SlotLossError] = None
        for slot_index, entries in handle._per_slot.items():
            if membership is not None and (
                slot_index in handle._lost_slots or slot_index in membership.quarantined
            ):
                for position, _ in entries:
                    results[position] = LOST
                continue
            try:
                out = self._recv(slot_index, handle._op)
            except SlotLossError as exc:
                # Keep receiving from the surviving slots: their replies are
                # already queued on their channels and skipping them would
                # desynchronize every later op on those streams.
                for position, _ in entries:
                    results[position] = LOST
                if slot_loss is None:
                    slot_loss = exc
                continue
            for (position, _), result in zip(entries, out):
                results[position] = result
        self._pending.pop(0)
        if slot_loss is not None and handle._op != "run":
            # Generation batches cannot be partially merged; surface the loss.
            handle._dead = True
            raise slot_loss
        return results

    def run_steps(
        self,
        program: str,
        items: Sequence[Tuple[Any, Callable[[], Any], Any]],
    ) -> List[Any]:
        """Run one per-iteration step for every ``(key, state_supplier, payload)``.

        Synchronous convenience over :meth:`start_steps` — dispatch and
        collect in one call.  Results come back in item order; the per-worker
        work itself runs concurrently across pool slots.
        """
        return self.start_steps(program, items).result()

    def drain_inflight(self) -> int:
        """Collect and discard any uncollected step replies; return the count.

        Exception-path safety valve used before boundary ops: the steps *did*
        execute in the pool (resident state reflects them), only their
        results are dropped, so a subsequent :meth:`pull_state` observes
        consistent post-step state.  On the normal training path the trainers
        always collect every handle, making this a no-op.
        """
        drained = 0
        while self._pending:
            handle = self._pending[0]
            handle.result()
            drained += 1
        if self._collector is not None and not self._collector._dead:
            drained += self._collector.drain()
        return drained

    def pull_params(self, keys: Sequence) -> Dict[Any, Any]:
        """Fetch flat parameter vectors from installed residents (state stays put)."""
        keys = list(keys)
        if not keys:
            return {}
        self._check_usable()
        self._require_no_inflight("pull_params")
        self._require_installed(keys, "pull_params")
        grouped = self._grouped(keys)
        merged, slot_loss = self._grouped_exchange("pull_params", grouped, lambda ks: ks)
        if slot_loss is not None:
            raise slot_loss
        return merged

    def push_params(self, params_by_key: Dict[Any, Any]) -> None:
        """Write flat parameter vectors into installed residents in place."""
        if not params_by_key:
            return
        self._check_usable()
        self._require_no_inflight("push_params")
        self._require_installed(params_by_key, "push_params")
        grouped = self._grouped(params_by_key)
        _, slot_loss = self._grouped_exchange(
            "push_params",
            grouped,
            lambda slot_keys: {key: params_by_key[key] for key in slot_keys},
        )
        if slot_loss is not None:
            raise slot_loss

    def pull_state(self, keys: Sequence, drop: bool = True) -> Dict[Any, Any]:
        """Fetch full resident state for ``keys``.

        With ``drop`` (the default) the trainer *reclaims* authority: the
        pool forgets the residents and the epoch is bumped, so stale copies
        can never be stepped again; the next participation re-installs from
        the trainer's (now current) objects.  With ``drop=False`` the call is
        a non-destructive full-state snapshot — the returned objects are
        current pickled copies, the pool stays authoritative and warm, and
        the epoch protocol is untouched.  (For the end-of-``train()``
        refresh prefer :meth:`pull_mirror`, which skips bulky immutable
        payloads like dataset shards.)
        """
        keys = list(keys)
        if not keys:
            return {}
        self._check_usable()
        self._require_no_inflight("pull_state")
        self._require_installed(keys, "pull_state")
        grouped = self._grouped(keys)
        merged, slot_loss = self._grouped_exchange(
            "pull_state", grouped, lambda slot_keys: (slot_keys, drop)
        )
        if drop:
            # Applied even on the loss path: slots that answered did drop
            # their residents (keys lost with a slot were already popped and
            # invalidated by the quarantine).
            for key in keys:
                self._installed.pop(key, None)
                self.invalidate(key)
                self._release_shm(("state", key))
        if slot_loss is not None:
            raise slot_loss
        return merged

    def pull_mirror(self, keys: Sequence) -> Dict[Any, Any]:
        """Fetch light-weight end-of-run mirror payloads from the residents.

        The pool stays authoritative and **warm** — no resident is dropped,
        no epoch is bumped, so a later ``train()`` re-enters without any
        install.  Each program's ``mirror`` callable chooses what the
        trainer's objects need to reflect the final state (models, optimizer
        moments, RNG/sampler cursors — not the dataset shard, so the refresh
        cost does not scale with shard bytes); programs without one return
        the full resident state.  Keys that are not installed are skipped,
        and a broken pool yields ``{}`` — the success-path refresh must
        degrade, never raise.  Any in-flight step batches are drained first,
        as in :meth:`pull_into`.
        """
        if self._broken_reason is not None:
            return {}
        self.drain_inflight()
        keys = [key for key in keys if self.installed(key)]
        if not keys:
            return {}
        grouped = self._grouped(keys)
        # The mirror is the degrade-never-raise refresh: a slot lost while
        # mirroring simply contributes nothing (its keys are queued for the
        # trainer's recovery path by the quarantine).
        merged, _ = self._grouped_exchange("pull_mirror", grouped, lambda ks: ks)
        return merged

    def pull_into(
        self, holders: Sequence, fields: Sequence[str], key_attr: str = "index"
    ) -> None:
        """Reclaim resident state and copy ``fields`` onto the holder objects.

        Convenience over :meth:`pull_state` shared by the trainers'
        ``sync_worker_state``: holders whose key is not installed are left
        untouched; for the rest, every named field is copied from the pulled
        state object onto the holder (both sides use the same field names).
        The pool copies are dropped and the epochs bumped — the trainer
        becomes authoritative (use :meth:`pull_mirror` for the
        non-destructive end-of-run refresh).

        Unlike the raw boundary ops this method first drains any in-flight
        step batches (discarding their results): it is what the trainers call
        from their cleanup paths, where an exception may have left pipelined
        steps uncollected, and the pulled state must reflect the steps the
        pool actually executed.
        """
        if self._broken_reason is None:
            self.drain_inflight()
        keys = [
            getattr(holder, key_attr)
            for holder in holders
            if self.installed(getattr(holder, key_attr))
        ]
        if not keys:
            return
        states = self.pull_state(keys, drop=True)
        for holder in holders:
            state = states.get(getattr(holder, key_attr))
            if state is None:
                continue
            for field in fields:
                setattr(holder, field, getattr(state, field))


register_backend(
    "resident",
    lambda max_workers=None, **options: ResidentBackend(max_workers, **options),
)

"""Picklable per-worker tasks for the execution backends.

The trainers snapshot everything a worker touches during one global
iteration into a task dataclass, hand the tasks to an
:class:`~repro.runtime.backend.ExecutorBackend`, and merge the returned
results back in worker-index order.  The task runners are **pure** with
respect to the trainer: they mutate only the objects carried inside their
own task and record compute charges on a detached
:class:`~repro.simulation.node.ComputeTape` instead of a shared ledger.

Two identity invariants make the ``process`` backend bitwise-faithful:

* a task and its result reference the *same* stateful objects
  (discriminator, optimizer, sampler, RNG), so under ``serial``/``thread``
  the merge phase's re-assignment is a no-op, while under ``process`` the
  round-tripped copies transparently replace the parent's state;
* the sampler and the worker RNG share one :class:`numpy.random.Generator`,
  and pickle preserves that sharing because both travel in the same task
  (and the same result) object graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.gan_ops import (
    GANObjective,
    GeneratedBatch,
    discriminator_update,
    generator_feedback,
    generator_update,
    sample_generator_images,
)
from ..datasets.sampler import EpochSampler
from ..nn.model import Sequential
from ..simulation.node import ComputeTape

__all__ = [
    "MDGANWorkerTask",
    "MDGANWorkerResult",
    "FLGANLocalTask",
    "FLGANLocalResult",
    "run_mdgan_worker_task",
    "run_flgan_local_task",
]


# -- MD-GAN: Algorithm 1 steps 2-3 ------------------------------------------------


@dataclass
class MDGANWorkerTask:
    """One worker's share of an MD-GAN global iteration (steps 2-3)."""

    worker_index: int
    discriminator: Sequential
    disc_opt: object
    sampler: EpochSampler
    rng: np.random.Generator
    objective: GANObjective
    disc_steps: int
    batch_size: int
    latent_dim: int
    x_d: np.ndarray
    x_g: np.ndarray
    labels_d: Optional[np.ndarray]
    labels_g: Optional[np.ndarray]
    batch_index_g: int


@dataclass
class MDGANWorkerResult:
    """Updated worker state plus the error feedback destined for the server."""

    worker_index: int
    discriminator: Sequential
    disc_opt: object
    sampler: EpochSampler
    rng: np.random.Generator
    disc_loss: float
    gen_loss: float
    feedback: np.ndarray
    batch_index_g: int
    tape: ComputeTape = field(default_factory=ComputeTape)


def run_mdgan_worker_task(task: MDGANWorkerTask) -> MDGANWorkerResult:
    """Run ``L`` discriminator steps and compute the error feedback ``F_n``.

    Pure with respect to the trainer: touches only objects inside ``task``
    and records compute costs on a private tape.
    """
    tape = ComputeTape()
    disc_loss = 0.0
    for _ in range(task.disc_steps):
        real_images, real_labels = task.sampler.next_batch()
        disc_loss = discriminator_update(
            task.discriminator,
            task.objective,
            task.disc_opt,
            real_images,
            real_labels if task.objective.conditional else None,
            task.x_d,
            task.labels_d,
        )
        tape.charge(
            "discriminator_training",
            2 * task.batch_size * task.discriminator.num_parameters,
        )

    gen_batch = GeneratedBatch(
        images=task.x_g,
        noise=np.zeros((task.x_g.shape[0], task.latent_dim), dtype=task.x_g.dtype),
        labels=task.labels_g,
        batch_index=task.batch_index_g,
    )
    gen_loss, feedback = generator_feedback(
        task.discriminator, task.objective, gen_batch
    )
    tape.charge(
        "feedback", 2 * task.batch_size * task.discriminator.num_parameters
    )
    tape.observe_memory(task.discriminator.num_parameters)
    return MDGANWorkerResult(
        worker_index=task.worker_index,
        discriminator=task.discriminator,
        disc_opt=task.disc_opt,
        sampler=task.sampler,
        rng=task.rng,
        disc_loss=disc_loss,
        gen_loss=gen_loss,
        feedback=feedback,
        batch_index_g=task.batch_index_g,
        tape=tape,
    )


# -- FL-GAN: one local iteration of the full GAN ----------------------------------


@dataclass
class FLGANLocalTask:
    """One worker's local GAN iteration between two federated rounds."""

    worker_index: int
    generator: Sequential
    discriminator: Sequential
    gen_opt: object
    disc_opt: object
    sampler: EpochSampler
    rng: np.random.Generator
    objective: GANObjective
    disc_steps: int
    batch_size: int


@dataclass
class FLGANLocalResult:
    """Updated local GAN state plus the iteration's losses."""

    worker_index: int
    generator: Sequential
    discriminator: Sequential
    gen_opt: object
    disc_opt: object
    sampler: EpochSampler
    rng: np.random.Generator
    gen_loss: float
    disc_loss: float


def run_flgan_local_task(task: FLGANLocalTask) -> FLGANLocalResult:
    """One discriminator+generator local step, as in the standalone baseline."""
    factory = task.objective.factory
    disc_loss = 0.0
    for _ in range(task.disc_steps):
        real_images, real_labels = task.sampler.next_batch()
        generated = sample_generator_images(
            task.generator, factory, task.batch_size, task.rng
        )
        disc_loss = discriminator_update(
            task.discriminator,
            task.objective,
            task.disc_opt,
            real_images,
            real_labels if task.objective.conditional else None,
            generated.images,
            generated.labels,
        )
    gen_loss = generator_update(
        task.generator,
        task.discriminator,
        factory,
        task.objective,
        task.gen_opt,
        task.batch_size,
        task.rng,
    )
    return FLGANLocalResult(
        worker_index=task.worker_index,
        generator=task.generator,
        discriminator=task.discriminator,
        gen_opt=task.gen_opt,
        disc_opt=task.disc_opt,
        sampler=task.sampler,
        rng=task.rng,
        gen_loss=gen_loss,
        disc_loss=disc_loss,
    )

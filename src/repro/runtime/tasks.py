"""Picklable per-worker payloads for the execution backends.

Two payload families serve the two execution styles:

* **Full-snapshot tasks** (``MDGANWorkerTask`` / ``FLGANLocalTask``) carry a
  worker's complete state every iteration.  They feed the stateless
  ``serial``/``thread``/``process`` backends: the trainers snapshot, the
  backend maps the pure runner over the tasks, and the (possibly pickle
  round-tripped) state is re-adopted in the merge phase.
* **Resident payloads** split the same work into a *build-once* state object
  (``MDGANResidentState`` / ``FLGANResidentState``) installed into a pool
  process exactly once, a *per-iteration* input (``MDGANStepInput``; FL-GAN
  local epochs need none), and a *delta* result (``MDGANStepResult`` /
  ``FLGANStepResult``) carrying only losses, feedback, compute tapes and the
  RNG/sampler cursors.  They feed the ``resident`` backend
  (:mod:`repro.runtime.resident`), which ships orders of magnitude fewer
  bytes per iteration because model, optimizer, sampler and shard stay put.

Both families execute the *same* compute cores (``_run_mdgan_compute`` /
``_run_flgan_compute``), so every backend produces bitwise identical seeded
trajectories.  Two identity invariants make the pickling backends faithful:

* a full-snapshot task and its result reference the *same* stateful objects
  (discriminator, optimizer, sampler, RNG), so under ``serial``/``thread``
  the merge phase's re-assignment is a no-op, while under ``process`` the
  round-tripped copies transparently replace the parent's state;
* the sampler and the worker RNG share one :class:`numpy.random.Generator`,
  and pickle preserves that sharing because both travel in the same payload
  object graph (task, result, or resident install).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from ..core.gan_ops import (
    GANObjective,
    GeneratedBatch,
    discriminator_update,
    generator_feedback,
    generator_update,
    sample_generator_images,
)
from ..datasets.sampler import EpochSampler
from ..nn.model import Sequential
from ..simulation.node import ComputeTape
from .resident import ResidentProgram, register_program

__all__ = [
    "MDGANWorkerTask",
    "MDGANWorkerResult",
    "MDGANResidentState",
    "MDGANStepInput",
    "MDGANStepResult",
    "FLGANLocalTask",
    "FLGANLocalResult",
    "FLGANResidentState",
    "FLGANStepResult",
    "run_mdgan_worker_task",
    "run_flgan_local_task",
    "run_mdgan_resident_step",
    "run_flgan_resident_step",
]


# -- MD-GAN: Algorithm 1 steps 2-3 ------------------------------------------------


@dataclass
class MDGANWorkerTask:
    """One worker's share of an MD-GAN global iteration (full snapshot)."""

    worker_index: int
    discriminator: Sequential
    disc_opt: object
    sampler: EpochSampler
    rng: np.random.Generator
    objective: GANObjective
    disc_steps: int
    batch_size: int
    latent_dim: int
    x_d: np.ndarray
    x_g: np.ndarray
    labels_d: Optional[np.ndarray]
    labels_g: Optional[np.ndarray]
    batch_index_g: int


@dataclass
class MDGANWorkerResult:
    """Updated worker state plus the error feedback destined for the server."""

    worker_index: int
    discriminator: Sequential
    disc_opt: object
    sampler: EpochSampler
    rng: np.random.Generator
    disc_loss: float
    gen_loss: float
    feedback: np.ndarray
    batch_index_g: int
    tape: ComputeTape = field(default_factory=ComputeTape)


@dataclass
class MDGANResidentState:
    """Build-once payload installed into a resident pool process.

    Bundles the worker's stateful objects with the static per-run context
    (objective, hyper-parameters) so per-iteration messages carry neither.
    """

    worker_index: int
    discriminator: Sequential
    disc_opt: object
    sampler: EpochSampler
    rng: np.random.Generator
    objective: GANObjective
    disc_steps: int
    batch_size: int
    latent_dim: int


@dataclass
class MDGANStepInput:
    """Per-iteration input for a resident MD-GAN worker: the two batches."""

    x_d: np.ndarray
    x_g: np.ndarray
    labels_d: Optional[np.ndarray]
    labels_g: Optional[np.ndarray]
    batch_index_g: int


@dataclass
class MDGANStepResult:
    """Delta result of one resident MD-GAN step: outputs and cursors only.

    ``rng_state``/``samples_drawn``/``epochs_completed`` let the trainer keep
    its local accounting exact while the heavyweight state stays resident.
    """

    worker_index: int
    disc_loss: float
    gen_loss: float
    feedback: np.ndarray
    batch_index_g: int
    samples_drawn: int
    epochs_completed: int
    rng_state: Dict[str, Any]
    tape: ComputeTape = field(default_factory=ComputeTape)


def _run_mdgan_compute(holder, step, tape: ComputeTape):
    """Shared MD-GAN compute core: ``L`` discriminator steps plus feedback.

    ``holder`` provides the stateful objects and static context (a
    :class:`MDGANWorkerTask` or :class:`MDGANResidentState`); ``step``
    provides the per-iteration inputs (the task itself, or a
    :class:`MDGANStepInput`).  Keeping one core guarantees bitwise-identical
    numerics across every backend.
    """
    disc_loss = 0.0
    for _ in range(holder.disc_steps):
        real_images, real_labels = holder.sampler.next_batch()
        disc_loss = discriminator_update(
            holder.discriminator,
            holder.objective,
            holder.disc_opt,
            real_images,
            real_labels if holder.objective.conditional else None,
            step.x_d,
            step.labels_d,
        )
        tape.charge(
            "discriminator_training",
            2 * holder.batch_size * holder.discriminator.num_parameters,
        )

    gen_batch = GeneratedBatch(
        images=step.x_g,
        noise=np.zeros((step.x_g.shape[0], holder.latent_dim), dtype=step.x_g.dtype),
        labels=step.labels_g,
        batch_index=step.batch_index_g,
    )
    gen_loss, feedback = generator_feedback(holder.discriminator, holder.objective, gen_batch)
    tape.charge("feedback", 2 * holder.batch_size * holder.discriminator.num_parameters)
    tape.observe_memory(holder.discriminator.num_parameters)
    return disc_loss, gen_loss, feedback


def run_mdgan_worker_task(task: MDGANWorkerTask) -> MDGANWorkerResult:
    """Run ``L`` discriminator steps and compute the error feedback ``F_n``.

    Pure with respect to the trainer: touches only objects inside ``task``
    and records compute costs on a private tape.
    """
    tape = ComputeTape()
    disc_loss, gen_loss, feedback = _run_mdgan_compute(task, task, tape)
    return MDGANWorkerResult(
        worker_index=task.worker_index,
        discriminator=task.discriminator,
        disc_opt=task.disc_opt,
        sampler=task.sampler,
        rng=task.rng,
        disc_loss=disc_loss,
        gen_loss=gen_loss,
        feedback=feedback,
        batch_index_g=task.batch_index_g,
        tape=tape,
    )


def run_mdgan_resident_step(state: MDGANResidentState, step: MDGANStepInput) -> MDGANStepResult:
    """One resident MD-GAN step: mutate resident state, return the delta."""
    tape = ComputeTape()
    disc_loss, gen_loss, feedback = _run_mdgan_compute(state, step, tape)
    return MDGANStepResult(
        worker_index=state.worker_index,
        disc_loss=disc_loss,
        gen_loss=gen_loss,
        feedback=feedback,
        batch_index_g=step.batch_index_g,
        samples_drawn=state.sampler.samples_drawn,
        epochs_completed=state.sampler.epochs_completed,
        rng_state=state.rng.bit_generator.state,
        tape=tape,
    )


# -- FL-GAN: one local iteration of the full GAN ----------------------------------


@dataclass
class FLGANLocalTask:
    """One worker's local GAN iteration between two federated rounds."""

    worker_index: int
    generator: Sequential
    discriminator: Sequential
    gen_opt: object
    disc_opt: object
    sampler: EpochSampler
    rng: np.random.Generator
    objective: GANObjective
    disc_steps: int
    batch_size: int


@dataclass
class FLGANLocalResult:
    """Updated local GAN state plus the iteration's losses."""

    worker_index: int
    generator: Sequential
    discriminator: Sequential
    gen_opt: object
    disc_opt: object
    sampler: EpochSampler
    rng: np.random.Generator
    gen_loss: float
    disc_loss: float


@dataclass
class FLGANResidentState:
    """Build-once payload for a resident FL-GAN worker (full local GAN)."""

    worker_index: int
    generator: Sequential
    discriminator: Sequential
    gen_opt: object
    disc_opt: object
    sampler: EpochSampler
    rng: np.random.Generator
    objective: GANObjective
    disc_steps: int
    batch_size: int


@dataclass
class FLGANStepResult:
    """Delta result of one resident FL-GAN local iteration: losses + cursors.

    Between federated rounds the trainer needs nothing else — the local GAN
    evolves entirely inside the pool.
    """

    worker_index: int
    gen_loss: float
    disc_loss: float
    samples_drawn: int
    epochs_completed: int
    rng_state: Dict[str, Any]


def _run_flgan_compute(holder):
    """Shared FL-GAN compute core: one discriminator+generator local step."""
    factory = holder.objective.factory
    disc_loss = 0.0
    for _ in range(holder.disc_steps):
        real_images, real_labels = holder.sampler.next_batch()
        generated = sample_generator_images(
            holder.generator, factory, holder.batch_size, holder.rng
        )
        disc_loss = discriminator_update(
            holder.discriminator,
            holder.objective,
            holder.disc_opt,
            real_images,
            real_labels if holder.objective.conditional else None,
            generated.images,
            generated.labels,
        )
    gen_loss = generator_update(
        holder.generator,
        holder.discriminator,
        factory,
        holder.objective,
        holder.gen_opt,
        holder.batch_size,
        holder.rng,
    )
    return gen_loss, disc_loss


def run_flgan_local_task(task: FLGANLocalTask) -> FLGANLocalResult:
    """One discriminator+generator local step, as in the standalone baseline."""
    gen_loss, disc_loss = _run_flgan_compute(task)
    return FLGANLocalResult(
        worker_index=task.worker_index,
        generator=task.generator,
        discriminator=task.discriminator,
        gen_opt=task.gen_opt,
        disc_opt=task.disc_opt,
        sampler=task.sampler,
        rng=task.rng,
        gen_loss=gen_loss,
        disc_loss=disc_loss,
    )


def run_flgan_resident_step(state: FLGANResidentState, step: None) -> FLGANStepResult:
    """One resident FL-GAN local iteration (``step`` carries no payload)."""
    gen_loss, disc_loss = _run_flgan_compute(state)
    return FLGANStepResult(
        worker_index=state.worker_index,
        gen_loss=gen_loss,
        disc_loss=disc_loss,
        samples_drawn=state.sampler.samples_drawn,
        epochs_completed=state.sampler.epochs_completed,
        rng_state=state.rng.bit_generator.state,
    )


# -- resident program registration -------------------------------------------------
#
# Boundary mutations (SWAP gossip, FedAvg broadcast) touch only model
# parameters, so pull/push exchange flat vectors and leave optimizer, sampler
# and RNG state untouched inside the pool.


def _mdgan_mirror(state: MDGANResidentState) -> Dict[str, Any]:
    """Light-weight end-of-run view: model, moments and cursors — no shard.

    Served through :meth:`~repro.runtime.resident.ResidentBackend.pull_mirror`
    when a ``train()`` call finishes successfully: the trainer's worker
    objects adopt the final discriminator/optimizer and fold the RNG/sampler
    cursors (including the mid-epoch shuffle order, so the mirrored sampler
    is complete and a later re-install resumes bitwise-exactly) back, while
    the dataset shard (immutable inside the pool, and a copy of what the
    trainer already holds) never re-crosses the pipe.
    """
    return {
        "discriminator": state.discriminator,
        "disc_opt": state.disc_opt,
        "rng_state": state.rng.bit_generator.state,
        "sampler_cursor": state.sampler.cursor_state(),
    }


def _flgan_mirror(state: FLGANResidentState) -> Dict[str, Any]:
    """Light-weight end-of-run view of a resident FL-GAN worker (no shard)."""
    return {
        "generator": state.generator,
        "discriminator": state.discriminator,
        "gen_opt": state.gen_opt,
        "disc_opt": state.disc_opt,
        "rng_state": state.rng.bit_generator.state,
        "sampler_cursor": state.sampler.cursor_state(),
    }


def _mdgan_pull_params(state: MDGANResidentState) -> np.ndarray:
    return state.discriminator.get_parameters()


def _mdgan_push_params(state: MDGANResidentState, vector: np.ndarray) -> None:
    state.discriminator.set_parameters(vector)


def _flgan_pull_params(state: FLGANResidentState) -> Dict[str, np.ndarray]:
    return {
        "generator": state.generator.get_parameters(),
        "discriminator": state.discriminator.get_parameters(),
    }


def _flgan_push_params(state: FLGANResidentState, params: Dict[str, np.ndarray]) -> None:
    state.generator.set_parameters(params["generator"])
    state.discriminator.set_parameters(params["discriminator"])


register_program(
    ResidentProgram(
        name="mdgan",
        step=run_mdgan_resident_step,
        pull_params=_mdgan_pull_params,
        push_params=_mdgan_push_params,
        mirror=_mdgan_mirror,
    )
)
register_program(
    ResidentProgram(
        name="flgan",
        step=run_flgan_resident_step,
        pull_params=_flgan_pull_params,
        push_params=_flgan_push_params,
        mirror=_flgan_mirror,
    )
)
